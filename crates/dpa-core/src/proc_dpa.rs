//! The DPA node driver: strip-mined thread scheduling plus communication
//! scheduling, as a [`sim_net::Proc`].
//!
//! Per node, the driver maintains the paper's two runtime structures —
//! **M**, the pointer→dependent-threads mapping ([`PointerMap`]), and
//! **D**, the outstanding-request table ([`PendingRequests`]) — plus the
//! per-destination coalescing buffers of the communication scheduler.
//!
//! Scheduling template (the paper's Figure 14 shape):
//!
//! 1. **Admit** — keep at most one strip's worth of top-level iterations
//!    live (k-bounded loop); admitting an iteration runs its creation
//!    code, which emits pointer-labeled dependent threads. The strip is
//!    either the paper's static `k` ([`StripMode::Fixed`]) or retuned at
//!    every strip boundary by the per-node feedback controller of
//!    [`crate::stripctl`] ([`StripMode::Adaptive`]): every `strip`
//!    completed iterations the driver reads its own idle/overhead deltas
//!    and suspended-thread population and grows or shrinks the k-bound.
//! 2. **Execute** — run ready threads depth-first. A demand on a local or
//!    already-arrived object becomes immediately ready; a demand on a
//!    missing remote object is aligned under its pointer in M, and the
//!    first alignment enqueues a request in the coalescing buffer for the
//!    owner node.
//! 3. **Communicate** — with pipelining, full buffers are sent the moment
//!    they fill and everything pending is drained at quiescence, so
//!    transfers overlap the remaining local work; without pipelining
//!    (the "Base" configuration) one batch is sent per quiescence and the
//!    node waits for its reply — each round trip is exposed.
//!
//! The *owner* side runs its own communication scheduler: with
//! `reply_agg_window > 1`, reply entries for incoming requests (and
//! batched `Update` reductions) are buffered per destination in a
//! [`ByteCoalescer`] and flushed adaptively — at MTU occupancy or the
//! entry window (whichever fills first), after `reply_flush_deadline_ns`
//! of simulated time since a destination's first entry (deadline wakes),
//! and unconditionally at every local quiescence point. A request that
//! finds the owner already idle is answered immediately: buffering only
//! happens while there is local work to overlap, so latency is never
//! traded for overhead.
//! 4. **Tile** — when a reply installs an object, *all* threads aligned
//!    under it are released consecutively: threads using the same object
//!    execute together, paying its fetch exactly once.
//!
//! Long drives are sliced at `poll_interval_ns` of simulated time so the
//! node services incoming requests at realistic polling granularity (the
//! paper notes poll placement was hand-tuned in their codes).
//!
//! # Data-side alignment (object migration)
//!
//! With `migration_epoch_ns > 0` the driver additionally runs the
//! locality-driven *object migration* protocol (see
//! `global_heap::migrate`): requesters sample per-pointer remote
//! dereference counts from their M mapping at align time and ship them to
//! the believed home in `Affinity` messages at every epoch wake; owners
//! accumulate the counts and, at their own epoch wakes, `depart` objects
//! whose dominant consumer crossed `migration_threshold` (bounded by
//! `migration_budget` per phase), batching the shipments through a third
//! [`ByteCoalescer`]. A request that reaches a birth home after its object
//! departed is forwarded one hop (`Forward`); a forward that outruns its
//! `Migrate` parks in an orphan queue until adoption. All of it is off by
//! default and every fan-out iterates in sorted order, so baseline runs
//! and replays stay bit-identical.
//!
//! # Read-mostly replication (multi-home broadcast caching)
//!
//! With `replication` enabled the driver additionally runs the third
//! alignment mode (see `global_heap::replicate`): pointers whose affinity
//! shows high fan-out with *no* dominant consumer — exactly the shape
//! migration loses on — are promoted to *replicated* at phase boundaries.
//! The owner broadcasts a generation-stamped copy to every consumer at
//! `on_start` (after the boundary deltas, before its own delta gate), and
//! subsequent remote reads hit the local replica with zero messages.
//! Writes never move: they funnel through the birth home, are counted per
//! window, and demote the pointer when the mix stops being read-mostly.
//! A replicated pointer is pinned against migration while replicated;
//! carried replicas ride the differential `(ptr, size, gen)` machinery, so
//! a lost broadcast degrades to a demand fetch or a diagnosable delta
//! stall — never a silent stale read.

use crate::config::{ConfigError, DpaConfig, Variant};
use crate::invariant::NodeSnapshot;
use crate::mapping::PointerMap;
use crate::stripctl::{StripController, StripMode, StripObs};
use crate::msg::DpaMsg;
use crate::pending::PendingRequests;
use crate::work::{Avail, Emit, PtrApp, Tagged, WorkEnv};
use fastmsg::{ByteCoalescer, Coalescer};
use global_heap::{ArrivalSet, GPtr, MigrationTable, ReplicaDirectory};
use sim_net::{Ctx, Dur, NodeId, NodeStats, Proc};
use crate::fxmap::{FxHashMap, FxHashSet};
use std::collections::VecDeque;

/// Wire bytes of one `(pointer, f64)` reduction entry.
const UPDATE_ENTRY_BYTES: u64 = GPtr::WIRE_BYTES as u64 + 8;

/// Dither seed for the adaptive strip controller (see
/// [`StripController::new`]); fixed so replays are bit-identical.
const STRIP_DITHER_SEED: u64 = 0x5712_C0DE;

/// A DPA node: the application's per-node instance plus runtime state.
pub struct DpaProc<A: PtrApp> {
    app: A,
    cfg: DpaConfig,
    /// Ready non-blocking threads (depth-first stack).
    stack: Vec<Tagged<A::Work>>,
    /// M: pointer → aligned dependent threads.
    map: PointerMap<Tagged<A::Work>>,
    /// D: outstanding (buffered or in-flight) requests.
    pending: PendingRequests,
    /// Renamed storage: remote objects fetched so far this phase.
    arrived: ArrivalSet,
    /// Per-destination request batching.
    coal: Coalescer<GPtr>,
    /// Batches that filled while sending was deferred (no pipelining).
    held: VecDeque<(u16, Vec<GPtr>)>,
    /// Per-destination reduction batching (fire-and-forget, so sent when
    /// full regardless of the pipelining flag).
    upd_coal: ByteCoalescer<(GPtr, f64)>,
    /// Owner-side reply scheduler: per-destination reply-entry batching
    /// under the adaptive flush policy (budget / window / deadline /
    /// quiescence). Unused (always empty) when `reply_agg_window == 1`.
    reply_coal: ByteCoalescer<(GPtr, u32)>,
    /// Earliest armed deadline wake for buffered replies/updates, in
    /// simulated ns. Wakes cannot be cancelled, so this only suppresses
    /// arming a *later* duplicate; a stale earlier wake fires harmlessly.
    flush_wake_at: Option<u64>,
    /// Migration state (`Some` iff `cfg.migration_enabled()`): adopted /
    /// departed / learned overrides plus owner-side affinity counts.
    mig: Option<MigrationTable>,
    /// Requester-side affinity deltas sampled at align time, awaiting the
    /// next epoch report (one count per aligned thread).
    aff_pending: FxHashMap<GPtr, u32>,
    /// Owner-side migration shipment batching (per new home).
    mig_coal: ByteCoalescer<(GPtr, u32)>,
    /// Forwarded requests that outran their `Migrate`: pointer → waiting
    /// requesters, served the moment adoption lands.
    orphans: FxHashMap<GPtr, Vec<u16>>,
    /// Next migration-epoch wake in simulated ns (`None` when disabled or
    /// after this node finished its iterations).
    next_epoch_at: Option<u64>,
    /// `migrations_out` of the carried-in table, so `migration_budget`
    /// bounds what *this phase* ships rather than the whole run.
    mig_out_at_start: u64,
    /// `(sender, seq)` dedup for Affinity / Migrate messages.
    seen_affinity: FxHashSet<(u16, u64)>,
    seen_migrates: FxHashSet<(u16, u64)>,
    /// Owner-side replica directory (`Some` iff `cfg.replication` and the
    /// driver installed one): which of this node's pointers are
    /// multi-homed, to whom, at which generation, and how write-heavy the
    /// current window is. Promotion/demotion policy runs in the driver at
    /// phase boundaries; this proc broadcasts, counts writes, and serves
    /// the directory back via [`DpaProc::take_replication`].
    repl: Option<ReplicaDirectory>,
    /// Replicas installed from a `Replicate` broadcast *this phase*:
    /// pointer → stamped generation. Guards the `PhaseDelta` invalidation
    /// path (a broadcast carries the post-boundary generation, so an
    /// invalidation it raced with is already satisfied) and feeds the
    /// `ReplicaIncoherent` oracle through the snapshot.
    replicas_held: FxHashMap<GPtr, u32>,
    /// `(sender, seq)` dedup for Replicate messages.
    seen_replicates: FxHashSet<(u16, u64)>,
    /// Replicate messages sent; doubles as the per-sender seq counter.
    replicate_msgs: u64,
    /// Replica entries put on the wire (conservation partner of
    /// `repl_entries_recv`).
    repl_entries_sent: u64,
    /// Replica entries received after seq-dedup.
    repl_entries_recv: u64,
    /// Differential re-alignment: the homes this node carried entries of
    /// across the phase barrier and still awaits a `PhaseDelta` from. The
    /// first strip is gated on hearing from every one, so a stale carried
    /// copy is invalidated before any thread can read it.
    awaiting_deltas: FxHashSet<u16>,
    /// Owner-side boundary deltas to announce at `on_start`: per consumer,
    /// the carried objects homed here whose generation moved (an empty
    /// list is the all-clear).
    delta_out: Vec<(u16, Vec<GPtr>)>,
    /// `(sender, seq)` dedup for PhaseDelta messages.
    seen_deltas: FxHashSet<(u16, u64)>,
    /// Admission/driving withheld until every awaited delta arrives.
    delta_gated: bool,
    delta_msgs_sent: u64,
    delta_msgs_recv: u64,
    delta_entries_sent: u64,
    delta_entries_recv: u64,
    /// Carried copies invalidated by an incoming delta (refetched on next
    /// use).
    stale_invalidated: u64,
    /// Entries preloaded from the differential carry (the phase began with
    /// this much renamed storage already warm).
    carried_in: u64,
    /// Objects installed (a pending request completed with data — by a
    /// reply or by an adoption that doubled as one). Equals
    /// `arrived.total_inserts()` whenever migration is off.
    installs: u64,
    /// Affinity messages sent; doubles as the per-sender seq counter.
    affinity_msgs: u64,
    /// Migrate messages sent; doubles as the per-sender seq counter.
    migrate_msgs: u64,
    forward_msgs: u64,
    aff_entries_sent: u64,
    /// Affinity entries received after seq-dedup (conservation partner of
    /// `aff_entries_sent`; counted whether or not the table keeps them).
    aff_entries_recv: u64,
    /// Migration entries committed for shipping (stub installed).
    mig_entries_pushed: u64,
    /// Migration entries put on the wire.
    mig_entries_sent: u64,
    forwarded_entries: u64,
    orphans_total: u64,
    orphans_served: u64,
    /// The k-bound currently in force (constant under a fixed strip;
    /// retuned at strip boundaries under an adaptive one).
    strip: usize,
    /// The adaptive k-bound controller (`Some` iff
    /// `cfg.adaptive_strip()`). Built lazily at `on_start` — the proc
    /// does not know its node id at construction — unless a controller
    /// carried over from the previous phase was installed first.
    strip_ctl: Option<StripController>,
    /// Completed-iteration count at which the next controller boundary
    /// fires.
    next_ctl_at: u64,
    /// Cumulative (local, overhead, idle) ns at the last boundary, so a
    /// retune observes the inter-boundary *deltas*.
    ctl_obs_base: (u64, u64, u64),
    /// Live work count per open iteration.
    iter_live: FxHashMap<u32, u32>,
    next_iter: usize,
    total_iters: usize,
    completed_iters: u64,
    threads_created: u64,
    peak_stack: u64,
    /// Objects with requests currently in flight (sent, reply pending).
    /// A set rather than a count: with migration an adoption can complete
    /// a pending request whose wire reply (possibly forwarded) arrives
    /// later, and set removal stays exact where a counter would drift.
    in_flight: FxHashSet<GPtr>,
    peak_in_flight: u64,
    request_msgs: u64,
    reply_msgs: u64,
    /// Update messages sent; doubles as this node's per-sender update
    /// sequence counter (the k-th Update we send carries `seq == k`).
    update_msgs: u64,
    updates_emitted: u64,
    updates_applied: u64,
    /// Request entries put on the wire (conservation vs. `coal` pushes).
    request_entries_sent: u64,
    /// Reduction entries put on the wire.
    update_entries_sent: u64,
    /// Reply entries accepted for sending (immediate or buffered).
    reply_entries_pushed: u64,
    /// Reply entries put on the wire (conservation vs. pushes).
    reply_entries_sent: u64,
    /// Per-pointer reply accounting `(pushed, sent)` — the hot-key
    /// conservation oracle. A skewed workload funnels most reply traffic
    /// through a few hub objects; this map proves no per-key entry is
    /// lost or invented across the scheduler, immediate-service, and
    /// orphan paths (the aggregate counters above would mask a bug that
    /// drops a hub entry while inventing one elsewhere).
    reply_ptr_acct: FxHashMap<GPtr, (u64, u64)>,
    /// `(sender, seq)` pairs of Update messages already applied; makes
    /// reduction application idempotent under duplicated delivery.
    seen_updates: FxHashSet<(u16, u64)>,
    /// Recycled emission buffer threaded through every [`WorkEnv`] this
    /// node builds, so the run-work hot loop emits without allocating.
    emit_buf: Vec<Emit<A::Work>>,
    wake_scheduled: bool,
    done: bool,
}

impl<A: PtrApp> DpaProc<A> {
    /// Wrap one node's application instance under `cfg`.
    ///
    /// `nodes` is the machine size (drives coalescer sizing). Panics on a
    /// degenerate config ([`DpaConfig::validate`] — use
    /// [`DpaProc::try_new`] for an `Err` instead) or if `cfg.variant` is
    /// not [`Variant::Dpa`] or [`Variant::Sequential`] — the baselines
    /// have their own driver.
    pub fn new(app: A, nodes: usize, cfg: DpaConfig) -> DpaProc<A> {
        match Self::try_new(app, nodes, cfg) {
            Ok(p) => p,
            Err(e) => panic!("invalid DpaConfig: {e}"),
        }
    }

    /// Like [`DpaProc::new`] but rejects a degenerate config with a clear
    /// [`ConfigError`] instead of a hang or panic deep in the run.
    pub fn try_new(app: A, nodes: usize, cfg: DpaConfig) -> Result<DpaProc<A>, ConfigError> {
        assert!(
            matches!(cfg.variant, Variant::Dpa | Variant::Sequential),
            "DpaProc drives DPA/Sequential, got {:?}",
            cfg.variant
        );
        cfg.validate()?;
        let strip = cfg.initial_strip();
        let total_iters = app.num_iterations();
        // Without pipelining, batches are held rather than auto-sent, so
        // the window can stay as configured; `held` captures overflow.
        let coal = Coalescer::new(nodes, cfg.agg_window);
        let upd_coal = ByteCoalescer::new(nodes, cfg.mtu.0 as u64, cfg.agg_window);
        let reply_coal = ByteCoalescer::new(nodes, cfg.mtu.0 as u64, cfg.reply_agg_window);
        let mig_coal = ByteCoalescer::new(nodes, cfg.mtu.0 as u64, cfg.agg_window);
        let mig = cfg.migration_enabled().then(MigrationTable::new);
        Ok(DpaProc {
            app,
            cfg,
            strip,
            strip_ctl: None,
            next_ctl_at: strip as u64,
            ctl_obs_base: (0, 0, 0),
            stack: Vec::new(),
            map: PointerMap::new(),
            pending: PendingRequests::new(),
            arrived: ArrivalSet::new(),
            coal,
            held: VecDeque::new(),
            upd_coal,
            reply_coal,
            flush_wake_at: None,
            mig,
            aff_pending: FxHashMap::default(),
            mig_coal,
            orphans: FxHashMap::default(),
            next_epoch_at: None,
            mig_out_at_start: 0,
            seen_affinity: FxHashSet::default(),
            seen_migrates: FxHashSet::default(),
            repl: None,
            replicas_held: FxHashMap::default(),
            seen_replicates: FxHashSet::default(),
            replicate_msgs: 0,
            repl_entries_sent: 0,
            repl_entries_recv: 0,
            awaiting_deltas: FxHashSet::default(),
            delta_out: Vec::new(),
            seen_deltas: FxHashSet::default(),
            delta_gated: false,
            delta_msgs_sent: 0,
            delta_msgs_recv: 0,
            delta_entries_sent: 0,
            delta_entries_recv: 0,
            stale_invalidated: 0,
            carried_in: 0,
            installs: 0,
            affinity_msgs: 0,
            migrate_msgs: 0,
            forward_msgs: 0,
            aff_entries_sent: 0,
            aff_entries_recv: 0,
            mig_entries_pushed: 0,
            mig_entries_sent: 0,
            forwarded_entries: 0,
            orphans_total: 0,
            orphans_served: 0,
            iter_live: FxHashMap::default(),
            next_iter: 0,
            total_iters,
            completed_iters: 0,
            threads_created: 0,
            peak_stack: 0,
            in_flight: FxHashSet::default(),
            peak_in_flight: 0,
            request_msgs: 0,
            reply_msgs: 0,
            update_msgs: 0,
            updates_emitted: 0,
            updates_applied: 0,
            request_entries_sent: 0,
            update_entries_sent: 0,
            reply_entries_pushed: 0,
            reply_entries_sent: 0,
            reply_ptr_acct: FxHashMap::default(),
            seen_updates: FxHashSet::default(),
            emit_buf: Vec::new(),
            wake_scheduled: false,
            done: false,
        })
    }

    /// The wrapped application (post-run inspection).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Install a migration table carried over from the previous phase
    /// (driver use, before the machine starts). Adopted objects are
    /// preloaded into the arrival set — their payloads really do occupy
    /// renamed storage here — without counting as phase fetches.
    pub fn set_migration(&mut self, mig: MigrationTable) {
        assert!(
            self.cfg.migration_enabled(),
            "set_migration on a config with migration disabled"
        );
        for (bits, size) in mig.adopted_entries() {
            let p = GPtr::from_bits(bits);
            // Stamped at the *current* generation: the adoptee serves this
            // object from world data, which is always current.
            self.arrived.preload_gen(p, size, self.app.object_generation(p));
        }
        self.mig_out_at_start = mig.migrations_out();
        self.mig = Some(mig);
    }

    /// Install the differential carry (driver use, before the machine
    /// starts): entries fetched in earlier phases are preloaded with the
    /// generation they were originally fetched at, and `awaiting` names
    /// the homes whose [`DpaMsg::PhaseDelta`] gates this node's first
    /// strip — a stale copy is invalidated before any thread can read it.
    pub fn set_phase_carry(&mut self, entries: Vec<(GPtr, u32, u32)>, awaiting: Vec<u16>) {
        assert!(
            self.cfg.differential,
            "set_phase_carry on a non-differential config"
        );
        self.carried_in += entries.len() as u64;
        for (ptr, size, gen) in entries {
            self.arrived.preload_gen(ptr, size, gen);
        }
        self.awaiting_deltas = awaiting.into_iter().collect();
        self.delta_gated = !self.awaiting_deltas.is_empty();
    }

    /// Install this node's outgoing boundary deltas (driver use): for each
    /// consumer carrying entries homed here, the subset whose generation
    /// moved across the barrier (empty = all-clear). Announced first thing
    /// in `on_start`, *before* this node gates on its own awaited deltas,
    /// so mutually-carrying nodes cannot deadlock.
    pub fn set_phase_deltas(&mut self, deltas: Vec<(u16, Vec<GPtr>)>) {
        assert!(
            self.cfg.differential,
            "set_phase_deltas on a non-differential config"
        );
        self.delta_out = deltas;
    }

    /// Drain the arrival set for the cross-phase carry (driver use, after
    /// the machine stops): every held entry as `(ptr, size, generation)`,
    /// sorted by pointer bits so the hand-off is deterministic.
    pub fn take_arrival_carry(&mut self) -> Vec<(GPtr, u32, u32)> {
        let mut out: Vec<(GPtr, u32, u32)> = self.arrived.entries().collect();
        out.sort_unstable_by_key(|&(p, _, _)| p.bits());
        out
    }

    /// Take M and D for cross-phase hand-off (driver use, after the
    /// machine stops): interners and warmed waiter-list capacities travel
    /// to the next phase's proc instead of being rebuilt.
    pub fn take_tables(&mut self) -> (PointerMap<Tagged<A::Work>>, PendingRequests) {
        (
            std::mem::take(&mut self.map),
            std::mem::take(&mut self.pending),
        )
    }

    /// Install M and D carried from the previous phase (driver use, before
    /// the machine starts). The tables are *patched* for reuse — per-phase
    /// state reset, interners kept — rather than rebuilt; see
    /// [`PointerMap::reset_for_phase`].
    pub fn set_tables(
        &mut self,
        mut map: PointerMap<Tagged<A::Work>>,
        mut pending: PendingRequests,
    ) {
        map.reset_for_phase();
        pending.reset_for_phase();
        self.map = map;
        self.pending = pending;
    }

    /// The node's migration table, when migration is enabled.
    pub fn migration(&self) -> Option<&MigrationTable> {
        self.mig.as_ref()
    }

    /// Take the migration table for cross-phase hand-off (driver use,
    /// after the machine stops).
    pub fn take_migration(&mut self) -> Option<MigrationTable> {
        self.mig.take()
    }

    /// Install this node's owner-side replica directory (driver use,
    /// before the machine starts). Entries flagged `needs_broadcast` go
    /// out first thing in `on_start`; the rest are carried by their
    /// consumers and validated by the differential all-clear.
    pub fn set_replication(&mut self, dir: ReplicaDirectory) {
        assert!(
            self.cfg.replication,
            "set_replication on a config with replication disabled"
        );
        self.repl = Some(dir);
    }

    /// The node's replica directory, when replication is enabled.
    pub fn replication(&self) -> Option<&ReplicaDirectory> {
        self.repl.as_ref()
    }

    /// Take the replica directory for cross-phase hand-off (driver use,
    /// after the machine stops), applying the read-mostly contract on the
    /// way out: entries whose window exceeded
    /// `replication_write_demote` writes are demoted and every window is
    /// zeroed for the next phase.
    pub fn take_replication(&mut self) -> Option<ReplicaDirectory> {
        let mut dir = self.repl.take()?;
        dir.end_window(self.cfg.replication_write_demote);
        Some(dir)
    }

    /// Replicas installed from broadcasts this phase, as sorted
    /// `(ptr bits, generation)` pairs (snapshot/oracle export).
    pub fn replicas_held(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self
            .replicas_held
            .iter()
            .map(|(p, &g)| (p.bits(), g))
            .collect();
        v.sort_unstable();
        v
    }

    /// Completed top-level iterations.
    pub fn completed_iterations(&self) -> u64 {
        self.completed_iters
    }

    /// The k-bound currently in force.
    pub fn current_strip(&self) -> usize {
        self.strip
    }

    /// The adaptive strip controller, when the config is adaptive (and
    /// the run has started or a carried controller was installed).
    pub fn strip_controller(&self) -> Option<&StripController> {
        self.strip_ctl.as_ref()
    }

    /// Install a strip controller carried over from the previous phase
    /// (driver use, before the machine starts): the phase opens at the
    /// strip the last one settled on, with hysteresis state intact.
    pub fn set_strip_controller(&mut self, ctl: StripController) {
        assert!(
            self.cfg.adaptive_strip(),
            "set_strip_controller on a fixed-strip config"
        );
        self.strip = ctl.strip();
        self.next_ctl_at = self.completed_iters + self.strip as u64;
        self.strip_ctl = Some(ctl);
    }

    /// Take the strip controller for cross-phase hand-off (driver use,
    /// after the machine stops).
    pub fn take_strip_controller(&mut self) -> Option<StripController> {
        self.strip_ctl.take()
    }

    /// Adaptive-strip boundary: when enough iterations completed since
    /// the last boundary, feed the controller the inter-boundary stat
    /// deltas and adopt its new strip. No-op under a fixed strip. Called
    /// from `admit`, so a retune can widen (or narrow) the window the
    /// very admission that crosses the boundary uses.
    fn maybe_retune(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        if self.strip_ctl.is_none() || self.completed_iters < self.next_ctl_at {
            return;
        }
        let s = ctx.stats();
        let (local, overhead, idle) = (s.local.as_ns(), s.overhead.as_ns(), s.idle.as_ns());
        let obs = StripObs {
            local_ns: local - self.ctl_obs_base.0,
            overhead_ns: overhead - self.ctl_obs_base.1,
            idle_ns: idle - self.ctl_obs_base.2,
            suspended_threads: self.map.live_threads(),
        };
        self.ctl_obs_base = (local, overhead, idle);
        let ctl = self.strip_ctl.as_mut().expect("checked above");
        self.strip = ctl.retune(&obs);
        self.next_ctl_at = self.completed_iters + self.strip as u64;
    }

    /// Export the runtime-state counters the DST invariant checker needs
    /// (see [`crate::invariant`]). `node` is this proc's node id (the proc
    /// itself does not know it outside a message context).
    pub fn snapshot(&self, node: u16) -> NodeSnapshot {
        let held_entries: usize = self.held.iter().map(|(_, b)| b.len()).sum();
        let (adopted_ptrs, departed_ptrs) = match &self.mig {
            Some(m) => (
                m.adopted_entries().into_iter().map(|(b, _)| b).collect(),
                m.departed_entries().into_iter().map(|(b, _)| b).collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        // Hottest reply keys by entries pushed, ties broken by pointer
        // bits so the export (and thus DST fingerprints) is deterministic.
        let mut reply_hot: Vec<(u64, u64, u64)> = self
            .reply_ptr_acct
            .iter()
            .map(|(p, &(pushed, sent))| (p.bits(), pushed, sent))
            .collect();
        reply_hot.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        reply_hot.truncate(8);
        NodeSnapshot {
            node,
            map_keys: self.map.keys(),
            map_threads: self.map.live_threads(),
            pending_requests: self.pending.len(),
            pending_sample: self.pending.sorted_sample(4),
            in_flight: self.in_flight.len(),
            requests_issued: self.pending.total(),
            objects_installed: self.installs,
            req_pushed: self.coal.total_pushed(),
            req_sent: self.request_entries_sent,
            req_buffered: self.coal.pending() + held_entries,
            updates_emitted: self.updates_emitted,
            updates_applied: self.updates_applied,
            upd_sent: self.update_entries_sent,
            upd_buffered: self.upd_coal.pending(),
            reply_pushed: self.reply_entries_pushed,
            reply_sent: self.reply_entries_sent,
            reply_buffered: self.reply_coal.pending(),
            reply_hot,
            request_msgs: self.request_msgs,
            reply_msgs: self.reply_msgs,
            update_msgs: self.update_msgs,
            aff_sent: self.aff_entries_sent,
            aff_recv: self.aff_entries_recv,
            mig_pushed: self.mig_entries_pushed,
            mig_sent: self.mig_entries_sent,
            mig_buffered: self.mig_coal.pending(),
            orphans_pending: self.orphans.values().map(Vec::len).sum(),
            adopted_ptrs,
            departed_ptrs,
            delta_entries_sent: self.delta_entries_sent,
            delta_entries_recv: self.delta_entries_recv,
            deltas_awaited: self.awaiting_deltas.len(),
            stale_cache_entries: self
                .arrived
                .entries()
                .filter(|&(p, _, gen)| gen != self.app.object_generation(p))
                .count(),
            repl_entries_sent: self.repl_entries_sent,
            repl_entries_recv: self.repl_entries_recv,
            replica_dir: self.repl.as_ref().map(|d| d.export()).unwrap_or_default(),
            replica_held: self.replicas_held(),
            strip_schedule: self
                .strip_ctl
                .as_ref()
                .map(|c| c.schedule().to_vec())
                .unwrap_or_default(),
            strip_bounds: self
                .cfg
                .strip_mode
                .adaptive_params()
                .map(|p| (p.min as u32, p.max as u32)),
        }
    }

    #[inline]
    fn pressure(&self) -> u64 {
        self.cfg.cost.pressure_extra_ns(self.map.live_threads())
    }

    /// Route the emissions of one finished work/creation, tagging them
    /// with `iter`. Drains `emits` in place so the caller can recycle the
    /// buffer's capacity for the next work item.
    fn route_emissions(
        &mut self,
        ctx: &mut Ctx<'_, DpaMsg>,
        iter: u32,
        emits: &mut Vec<Emit<A::Work>>,
    ) {
        let me = ctx.me().0;
        // Reverse so that, popped from the stack, work runs in emission
        // order (depth-first).
        for e in emits.drain(..).rev() {
            if let Emit::Accum(ptr, value) = e {
                // Reductions are not threads: apply locally or batch for
                // the owner; no alignment, no iteration accounting.
                self.updates_emitted += 1;
                if ptr.is_local_to(me) {
                    ctx.charge_overhead(self.cfg.cost.owner_lookup_ns);
                    self.updates_applied += 1;
                    self.app.apply_update(ptr, value);
                    // Single-writer: every write funnels through the birth
                    // home, where the replica directory counts it toward
                    // the read-mostly demotion window.
                    if let Some(d) = self.repl.as_mut() {
                        d.note_write(ptr);
                    }
                } else {
                    ctx.charge_overhead(self.cfg.cost.request_entry_ns);
                    let now = ctx.now().as_ns();
                    for batch in self.upd_coal.push(ptr.node(), (ptr, value), UPDATE_ENTRY_BYTES, now)
                    {
                        self.send_update(ctx, ptr.node(), batch);
                    }
                }
                continue;
            }
            self.threads_created += 1;
            *self.iter_live.entry(iter).or_insert(0) += 1;
            ctx.charge_overhead(self.cfg.cost.thread_create_ns);
            match e {
                Emit::Local(work) => {
                    self.stack.push(Tagged { iter, work });
                }
                Emit::Demand(ptr, work) => {
                    // Resolve the current home: birth node unless migration
                    // re-homed the object (adopted here → local; departed /
                    // learned override → the new home, skipping the stub).
                    let home = match &self.mig {
                        Some(m) => m.home_of(ptr, me),
                        None => ptr.node(),
                    };
                    if home == me || self.arrived.contains(ptr) {
                        // Data already here: immediately ready.
                        self.stack.push(Tagged { iter, work });
                    } else {
                        ctx.charge_overhead(self.cfg.cost.map_update_ns + self.pressure());
                        let first = self.map.align(ptr, Tagged { iter, work });
                        if self.mig.is_some() {
                            // Affinity signal: one count per aligned thread
                            // (the M-mapping population, not messages).
                            *self.aff_pending.entry(ptr).or_insert(0) += 1;
                            self.arm_epoch(ctx);
                        }
                        if first && self.pending.insert(ptr) {
                            ctx.charge_overhead(self.cfg.cost.request_entry_ns);
                            if let Some(batch) = self.coal.push(home, ptr) {
                                if self.cfg.pipeline && self.can_send() {
                                    self.send_request(ctx, home, batch);
                                } else {
                                    self.held.push_back((home, batch));
                                }
                            }
                        }
                    }
                }
                Emit::Accum(..) => unreachable!("handled above"),
            }
        }
        self.peak_stack = self.peak_stack.max(self.stack.len() as u64);
    }

    fn send_update(&mut self, ctx: &mut Ctx<'_, DpaMsg>, dst: u16, batch: Vec<(GPtr, f64)>) {
        debug_assert!(!batch.is_empty());
        let seq = self.update_msgs;
        self.update_msgs += 1;
        self.update_entries_sent += batch.len() as u64;
        ctx.send(
            NodeId(dst),
            DpaMsg::Update {
                seq,
                entries: batch,
            },
        );
    }

    fn send_reply(&mut self, ctx: &mut Ctx<'_, DpaMsg>, dst: u16, batch: Vec<(GPtr, u32)>) {
        self.reply_msgs += 1;
        self.reply_entries_sent += batch.len() as u64;
        for &(p, _) in &batch {
            self.reply_ptr_acct.entry(p).or_default().1 += 1;
        }
        crate::owner::send_reply_batch(&self.cfg, ctx, NodeId(dst), batch);
    }

    /// Owner-side scheduler: buffer reply entries for `src`, sending any
    /// batches the push forces out (budget/window full, oversized entry).
    fn enqueue_replies(&mut self, ctx: &mut Ctx<'_, DpaMsg>, src: NodeId, ptrs: &[GPtr]) {
        let now = ctx.now().as_ns();
        for (p, size) in
            crate::owner::lookup_entries(&self.app, &self.cfg, ctx, ptrs, self.mig.as_ref())
        {
            self.reply_entries_pushed += 1;
            self.reply_ptr_acct.entry(p).or_default().0 += 1;
            let entry_bytes = (size + GPtr::WIRE_BYTES) as u64;
            for batch in self.reply_coal.push(src.0, (p, size), entry_bytes, now) {
                self.send_reply(ctx, src.0, batch);
            }
        }
        self.ensure_flush_wake(ctx);
    }

    /// Flush every buffered reply/update destination whose oldest entry
    /// has aged past the deadline, then re-arm the wake for what remains.
    fn flush_due(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        // Fast path for the common wake: nothing buffered anywhere and no
        // wake armed means every branch below is a no-op. Self-wake poll
        // slices land here once per event on the hot path.
        if self.flush_wake_at.is_none()
            && self.reply_coal.is_empty()
            && self.upd_coal.is_empty()
            && self.mig_coal.is_empty()
        {
            return;
        }
        let now = ctx.now().as_ns();
        if self.flush_wake_at.is_some_and(|t| t <= now) {
            self.flush_wake_at = None;
        }
        let deadline = self.cfg.reply_flush_deadline_ns;
        for (dst, batch) in self.reply_coal.take_due(now, deadline) {
            self.send_reply(ctx, dst, batch);
        }
        for (dst, batch) in self.upd_coal.take_due(now, deadline) {
            self.send_update(ctx, dst, batch);
        }
        for (dst, batch) in self.mig_coal.take_due(now, deadline) {
            self.send_migrate(ctx, dst, batch);
        }
        self.ensure_flush_wake(ctx);
    }

    /// Arm a deadline wake covering the oldest buffered reply/update entry
    /// (no-op when nothing is buffered or an earlier wake is already
    /// armed). This is what guarantees a buffered batch can never be
    /// stranded: every enqueue path ends with a wake at its deadline.
    fn ensure_flush_wake(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        let deadline = self.cfg.reply_flush_deadline_ns;
        let due = [
            self.reply_coal.next_due(deadline),
            self.upd_coal.next_due(deadline),
            self.mig_coal.next_due(deadline),
        ]
        .into_iter()
        .flatten()
        .min();
        if let Some(due) = due {
            let rearm = match self.flush_wake_at {
                None => true,
                Some(t) => due < t,
            };
            if rearm {
                self.flush_wake_at = Some(due);
                let now = ctx.now().as_ns();
                ctx.wake_after(Dur::from_ns(due.saturating_sub(now)));
            }
        }
    }

    /// Report the affinity deltas sampled since the last epoch to each
    /// object's believed home (sorted fan-out for determinism). Entries
    /// whose home turns out to be this node (an override learned or an
    /// adoption that landed mid-epoch) are dropped — local dereferences
    /// are not migration signal. Entries below the per-consumer
    /// [`affinity_report_floor`](DpaConfig::affinity_report_floor) are
    /// dropped too: one or two touches in a window is background noise
    /// the owner cannot act on, and not shipping it keeps the report
    /// proportional to the *hot* working set instead of the whole one.
    fn send_affinity(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        if self.aff_pending.is_empty() {
            return;
        }
        let me = ctx.me().0;
        let floor = self.cfg.affinity_report_floor;
        let mut per_dst: FxHashMap<u16, Vec<(GPtr, u32)>> = FxHashMap::default();
        for (ptr, n) in self.aff_pending.drain() {
            if n < floor {
                continue;
            }
            let home = match &self.mig {
                Some(m) => m.home_of(ptr, me),
                None => ptr.node(),
            };
            if home != me {
                per_dst.entry(home).or_default().push((ptr, n));
            }
        }
        let mut dsts: Vec<u16> = per_dst.keys().copied().collect();
        dsts.sort_unstable();
        for dst in dsts {
            let mut entries = per_dst.remove(&dst).expect("key from this map");
            entries.sort_unstable_by_key(|&(p, _)| p.bits());
            ctx.charge_overhead(self.cfg.cost.request_entry_ns * entries.len() as u64);
            let seq = self.affinity_msgs;
            self.affinity_msgs += 1;
            self.aff_entries_sent += entries.len() as u64;
            ctx.send(NodeId(dst), DpaMsg::Affinity { seq, entries });
        }
    }

    /// Owner-side epoch step: commit this epoch's migration picks (stub
    /// installed *before* the shipment leaves, so a racing request can only
    /// forward, never double-serve) and batch them to their new homes.
    fn ship_migrations(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        let Some(m) = self.mig.as_ref() else { return };
        let used = (m.migrations_out() - self.mig_out_at_start) as usize;
        let remaining = self.cfg.migration_budget.saturating_sub(used);
        if remaining == 0 {
            return;
        }
        let picks = m.pick_migrations(self.cfg.migration_threshold, remaining);
        let now = ctx.now().as_ns();
        for mv in picks {
            let size = self.app.object_size(mv.ptr);
            let m = self.mig.as_mut().expect("checked above");
            if !m.depart(mv.ptr, mv.to) {
                continue;
            }
            // The sender keeps a read replica for the rest of the phase:
            // objects are phase-immutable, and local threads already routed
            // to this (former) home may not have run yet. New ownership —
            // and the next phase's routing — moves with the stub.
            self.arrived
                .preload_gen(mv.ptr, size, self.app.object_generation(mv.ptr));
            self.mig_entries_pushed += 1;
            ctx.charge_overhead(self.cfg.cost.owner_lookup_ns);
            let entry_bytes = (size + GPtr::WIRE_BYTES) as u64;
            for batch in self.mig_coal.push(mv.to, (mv.ptr, size), entry_bytes, now) {
                self.send_migrate(ctx, mv.to, batch);
            }
        }
        self.ensure_flush_wake(ctx);
    }

    /// Push the replica payloads flagged for (re-)broadcast to their
    /// consumer sets: one `Replicate` per (consumer, generation) group,
    /// sized and charged like a reply, fanned out in sorted order. Fresh
    /// promotions and moved generations are flagged; an unchanged replica
    /// is carried by its consumer and validated by the differential
    /// all-clear instead, so it costs nothing here.
    fn send_replicate_broadcasts(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        let broadcasts = match self.repl.as_mut() {
            Some(d) => d.take_broadcasts(),
            None => return,
        };
        if broadcasts.is_empty() {
            return;
        }
        let me = ctx.me().0;
        let mut per: FxHashMap<(u16, u32), Vec<(GPtr, u32)>> = FxHashMap::default();
        for (ptr, gen, consumers) in broadcasts {
            debug_assert!(ptr.is_local_to(me), "broadcasting a pointer homed elsewhere");
            let size = self.app.object_size(ptr);
            for c in consumers {
                debug_assert!(c != me, "owner in its own consumer set");
                per.entry((c, gen)).or_default().push((ptr, size));
            }
        }
        let mut keys: Vec<(u16, u32)> = per.keys().copied().collect();
        keys.sort_unstable();
        for (dst, gen) in keys {
            let entries = per.remove(&(dst, gen)).expect("key from this map");
            ctx.charge_overhead(self.cfg.cost.owner_lookup_ns * entries.len() as u64);
            let payload = crate::owner::reply_payload_bytes(&entries);
            crate::owner::charge_extra_packets(&self.cfg, ctx, payload);
            let seq = self.replicate_msgs;
            self.replicate_msgs += 1;
            self.repl_entries_sent += entries.len() as u64;
            ctx.send(NodeId(dst), DpaMsg::Replicate { seq, gen, entries });
        }
    }

    fn send_migrate(&mut self, ctx: &mut Ctx<'_, DpaMsg>, dst: u16, batch: Vec<(GPtr, u32)>) {
        debug_assert!(!batch.is_empty());
        let payload = crate::owner::reply_payload_bytes(&batch);
        crate::owner::charge_extra_packets(&self.cfg, ctx, payload);
        let seq = self.migrate_msgs;
        self.migrate_msgs += 1;
        self.mig_entries_sent += batch.len() as u64;
        ctx.send(NodeId(dst), DpaMsg::Migrate { seq, entries: batch });
    }

    /// Split an incoming request into the part this node can serve, the
    /// part that must chase forwarding stubs (one `Forward` per new home,
    /// sorted for determinism), and the part that raced ahead of a
    /// `Migrate` still in flight — a consumer with a learned override, or
    /// the old home's own stub, can address this node directly before the
    /// shipment lands; those park in the orphan queue exactly like a
    /// forward that outran its shipment. Pass-through when migration is
    /// off.
    fn triage_request(
        &mut self,
        ctx: &mut Ctx<'_, DpaMsg>,
        src: NodeId,
        mut ptrs: Vec<GPtr>,
    ) -> Vec<GPtr> {
        if self.mig.is_none() {
            return ptrs;
        }
        let me = ctx.me().0;
        let mut serve = Vec::with_capacity(ptrs.len());
        let mut fwd: FxHashMap<u16, Vec<GPtr>> = FxHashMap::default();
        let mut early: Vec<GPtr> = Vec::new();
        {
            let m = self.mig.as_ref().expect("checked above");
            for p in ptrs.drain(..) {
                if let Some(to) = m.forward_target(p) {
                    fwd.entry(to).or_default().push(p);
                } else if p.is_local_to(me) || m.is_adopted(p) {
                    serve.push(p);
                } else {
                    early.push(p);
                }
            }
        }
        self.coal.recycle(ptrs);
        for p in early {
            self.orphans.entry(p).or_default().push(src.0);
            self.orphans_total += 1;
        }
        let mut targets: Vec<u16> = fwd.keys().copied().collect();
        targets.sort_unstable();
        for to in targets {
            let mut entries = fwd.remove(&to).expect("key from this map");
            entries.sort_unstable_by_key(|p| p.bits());
            ctx.charge_overhead(self.cfg.cost.request_entry_ns * entries.len() as u64);
            self.forward_msgs += 1;
            self.forwarded_entries += entries.len() as u64;
            ctx.send(
                NodeId(to),
                DpaMsg::Forward {
                    requester: src.0,
                    entries,
                },
            );
        }
        serve
    }

    /// Answer forwarded pointers this node has adopted, on behalf of
    /// `requester`. A requester other than this node goes through the
    /// normal owner reply machinery; `requester == me` means our own
    /// pre-migration request chased the object here — install it directly,
    /// as if the reply had arrived.
    fn answer_forwarded(&mut self, ctx: &mut Ctx<'_, DpaMsg>, requester: u16, ptrs: Vec<GPtr>) {
        let me = ctx.me();
        if requester == me.0 {
            let objs: Vec<(GPtr, u32)> =
                ptrs.iter().map(|&p| (p, self.app.object_size(p))).collect();
            self.coal.recycle(ptrs);
            self.install_reply(ctx, me, objs);
            return;
        }
        if self.cfg.reply_agg_window > 1 && !self.stack.is_empty() && !self.done {
            self.enqueue_replies(ctx, NodeId(requester), &ptrs);
        } else {
            let acct = crate::owner::service_request(
                &self.app,
                &self.cfg,
                ctx,
                NodeId(requester),
                &ptrs,
                self.mig.as_ref(),
            );
            self.reply_msgs += acct.msgs;
            self.reply_entries_pushed += acct.entries;
            self.reply_entries_sent += acct.entries;
            for &p in &ptrs {
                let e = self.reply_ptr_acct.entry(p).or_default();
                e.0 += 1;
                e.1 += 1;
            }
        }
        self.coal.recycle(ptrs);
    }

    /// One migration epoch: report sampled affinity, then ship this
    /// owner's picks.
    fn run_epoch(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        self.send_affinity(ctx);
        self.ship_migrations(ctx);
    }

    /// Arm the next migration-epoch wake unless one is already armed.
    /// Epochs are event-driven: armed when signal appears (a sampled
    /// remote align, a received affinity report) and re-armed after an
    /// epoch only while epochs keep producing messages. A free-running
    /// timer would keep a stalled machine's event queue alive forever,
    /// turning a lost message into a livelock instead of a diagnosable
    /// stall.
    fn arm_epoch(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        if self.mig.is_none() || self.done || self.next_epoch_at.is_some() {
            return;
        }
        let epoch = self.cfg.migration_epoch_ns;
        // `u64::MAX` is boundary-only mode: affinity still accumulates at
        // align time and ships in the final phase-end report (which is
        // all the boundary promotion/migration decisions need), but no
        // periodic epoch ever fires — arming one would also strand an
        // uncancellable far-future wake in the queue, stretching the
        // phase makespan to the epoch length.
        if epoch == u64::MAX {
            return;
        }
        self.next_epoch_at = Some(ctx.now().as_ns() + epoch);
        ctx.wake_after(Dur::from_ns(epoch));
    }

    fn finish_one_work(&mut self, iter: u32) {
        let live = self
            .iter_live
            .get_mut(&iter)
            .expect("finished work for unknown iteration");
        *live -= 1;
        if *live == 0 {
            self.iter_live.remove(&iter);
            self.completed_iters += 1;
        }
    }

    fn admit(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        self.maybe_retune(ctx);
        while self.iter_live.len() < self.strip && self.next_iter < self.total_iters {
            let iter = self.next_iter as u32;
            self.next_iter += 1;
            let mut env = WorkEnv::with_migration(
                ctx.me().0,
                ctx.num_nodes(),
                Avail::Arrived(&self.arrived),
                self.mig.as_ref(),
            );
            env.reuse_buffer(std::mem::take(&mut self.emit_buf));
            self.app.start_iteration(iter as usize, &mut env);
            let (ns, mut emits) = env.finish();
            ctx.charge_local(ns);
            self.route_emissions(ctx, iter, &mut emits);
            self.emit_buf = emits;
            // An iteration that spawned no threads (nothing, or only
            // reductions) is already complete.
            if !self.iter_live.contains_key(&iter) {
                self.completed_iters += 1;
            }
        }
    }

    fn send_request(&mut self, ctx: &mut Ctx<'_, DpaMsg>, dst: u16, batch: Vec<GPtr>) {
        debug_assert!(!batch.is_empty());
        debug_assert!(dst != ctx.me().0, "self-requests must be routed locally");
        for p in &batch {
            self.in_flight.insert(*p);
        }
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight.len() as u64);
        self.request_msgs += 1;
        self.request_entries_sent += batch.len() as u64;
        ctx.send(NodeId(dst), DpaMsg::Request(batch));
    }

    /// Flow control: may another batch be sent right now? At least one
    /// batch is always allowed when nothing is in flight.
    #[inline]
    fn can_send(&self) -> bool {
        self.in_flight.is_empty() || self.in_flight.len() < self.cfg.max_outstanding
    }

    /// Requester side: install arrived objects and release their aligned
    /// threads (tiling: they will run consecutively).
    ///
    /// Idempotent: a duplicated reply (fault injection) finds the object
    /// already in the arrival set with its request completed and changes
    /// nothing — no double release, no D corruption. The handler overhead
    /// is still charged (the CPU really does re-hash the pointer before
    /// discovering the dup). With migration on, a reply arriving from a
    /// node other than the birth home reveals a re-homing (the serving node
    /// is the adoptee), which is how consumers learn to skip the forwarding
    /// hop next phase.
    fn install_reply(&mut self, ctx: &mut Ctx<'_, DpaMsg>, src: NodeId, mut objs: Vec<(GPtr, u32)>) {
        for (ptr, size) in objs.drain(..) {
            ctx.charge_overhead(self.cfg.cost.reply_install_ns + self.pressure());
            if let Some(m) = self.mig.as_mut() {
                if src.0 != ptr.node() {
                    m.learn_override(ptr, src.0);
                }
            }
            // The wire reply (even a redundant one) retires the in-flight
            // request for this object.
            self.in_flight.remove(&ptr);
            let fresh = self
                .arrived
                .insert_gen(ptr, size, self.app.object_generation(ptr));
            if !fresh && !self.pending.contains(ptr) {
                // Duplicated reply, or the object was already installed by
                // an adoption that completed the request.
                continue;
            }
            let was_pending = self.pending.complete(ptr);
            debug_assert!(was_pending, "unsolicited reply for {ptr}");
            self.installs += 1;
            self.map.release_into(ptr, &mut self.stack);
        }
        self.reply_coal.recycle(objs);
        self.peak_stack = self.peak_stack.max(self.stack.len() as u64);
    }

    /// The scheduling loop: execute, admit, then schedule communication.
    /// Slices itself every `poll_interval_ns` of simulated time.
    fn drive(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        if self.delta_gated {
            // First strip is gated on the boundary deltas: a carried copy
            // might be stale, and running a thread over it before the
            // invalidation lands would read the previous timestep's value.
            return;
        }
        let slice_start = ctx.now();
        let slice = Dur::from_ns(self.cfg.poll_interval_ns);
        loop {
            // Execute ready threads (and keep the admission window full).
            while let Some(t) = self.stack.pop() {
                ctx.charge_overhead(self.cfg.cost.resume_ns + self.pressure());
                let mut env = WorkEnv::with_migration(
                    ctx.me().0,
                    ctx.num_nodes(),
                    Avail::Arrived(&self.arrived),
                    self.mig.as_ref(),
                );
                env.reuse_buffer(std::mem::take(&mut self.emit_buf));
                self.app.run_work(t.work, &mut env);
                let (ns, mut emits) = env.finish();
                ctx.charge_local(ns);
                self.route_emissions(ctx, t.iter, &mut emits);
                self.emit_buf = emits;
                self.finish_one_work(t.iter);
                self.admit(ctx);
                if ctx.now().since(slice_start) >= slice {
                    // Yield to the event loop so incoming requests are
                    // serviced at poll granularity; resume immediately.
                    if !self.wake_scheduled {
                        self.wake_scheduled = true;
                        ctx.wake_after(Dur::ZERO);
                    }
                    return;
                }
            }
            self.admit(ctx);
            if !self.stack.is_empty() {
                continue;
            }

            // Local quiescence: schedule communication. Buffered replies
            // and reductions are flushed unconditionally — there is no
            // local work left to overlap, so holding them would trade
            // latency for nothing.
            let replies = self.reply_coal.drain_all();
            for (dst, batch) in replies {
                self.send_reply(ctx, dst, batch);
            }
            let upd = self.upd_coal.drain_all();
            for (dst, batch) in upd {
                self.send_update(ctx, dst, batch);
            }
            let migs = self.mig_coal.drain_all();
            for (dst, batch) in migs {
                self.send_migrate(ctx, dst, batch);
            }
            if self.cfg.pipeline {
                while self.can_send() {
                    if let Some((dst, batch)) = self.held.pop_front() {
                        self.send_request(ctx, dst, batch);
                    } else if let Some(dst) = self.coal.first_nonempty() {
                        let batch = self.coal.take(dst).expect("nonempty buffer");
                        self.send_request(ctx, dst, batch);
                    } else {
                        break;
                    }
                }
            } else if let Some((dst, batch)) = self.held.pop_front() {
                self.send_request(ctx, dst, batch);
            } else if let Some(dst) = self.coal.first_nonempty() {
                if let Some(batch) = self.coal.take(dst) {
                    self.send_request(ctx, dst, batch);
                }
            }

            // Finished? (Nothing ready, nothing admitted, nothing owed.)
            // With migration, an adoption can complete a pending request
            // whose pointer still sits in the request buffers or on the
            // wire, so the buffers and in-flight set are part of the
            // condition rather than implied by `pending` being empty.
            if self.next_iter == self.total_iters
                && self.iter_live.is_empty()
                && self.pending.is_empty()
                && self.in_flight.is_empty()
                && self.coal.is_empty()
                && self.held.is_empty()
            {
                if self.mig.is_some() {
                    // Final affinity report: owners fold the tail of this
                    // phase's signal into the next boundary's decisions.
                    self.send_affinity(ctx);
                    self.next_epoch_at = None;
                }
                debug_assert!(self.awaiting_deltas.is_empty());
                debug_assert!(self.map.is_empty());
                debug_assert!(self.upd_coal.is_empty());
                debug_assert!(self.reply_coal.is_empty());
                debug_assert!(self.mig_coal.is_empty());
                self.done = true;
            }
            return;
        }
    }
}

impl<A: PtrApp> Proc for DpaProc<A> {
    type Msg = DpaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        if let StripMode::Adaptive(params) = self.cfg.strip_mode {
            if self.strip_ctl.is_none() {
                let ctl = StripController::new(params, ctx.me().0, STRIP_DITHER_SEED);
                self.strip = ctl.strip();
                self.next_ctl_at = self.strip as u64;
                self.strip_ctl = Some(ctl);
            }
        }
        if self.cfg.migration_enabled() && self.cfg.migration_epoch_ns != u64::MAX {
            let epoch = self.cfg.migration_epoch_ns;
            self.next_epoch_at = Some(ctx.now().as_ns() + epoch);
            ctx.wake_after(Dur::from_ns(epoch));
        }
        // Replica broadcasts go out FIRST, before the boundary deltas.
        // Per-link delivery is FIFO, so a consumer installs the fresh
        // generation (and records it in `replicas_held`) before this
        // owner's PhaseDelta arrives to invalidate the stale one — the
        // delta handler then sees the replica is already current and
        // leaves it alone, instead of invalidating and forcing a demand
        // refetch that races the broadcast. Broadcasts gate nothing, so
        // sending them first cannot deadlock; like the deltas, they go
        // out even if this node is itself delta-gated — an owner must
        // serve its consumers regardless of what it is waiting on.
        self.send_replicate_broadcasts(ctx);
        // Differential boundary deltas go out before this node gates on
        // its own awaited ones, so mutually-carrying nodes cannot
        // deadlock. The all-clear (empty list) is a header-only packet.
        let me = ctx.me().0;
        for (dst, entries) in std::mem::take(&mut self.delta_out) {
            debug_assert!(dst != me, "self-deltas must be pruned by the driver");
            ctx.charge_overhead(self.cfg.cost.request_entry_ns * entries.len() as u64);
            let seq = self.delta_msgs_sent;
            self.delta_msgs_sent += 1;
            self.delta_entries_sent += entries.len() as u64;
            ctx.send(NodeId(dst), DpaMsg::PhaseDelta { seq, entries });
        }
        if self.delta_gated {
            return;
        }
        self.admit(ctx);
        self.drive(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DpaMsg>, src: NodeId, msg: DpaMsg) {
        match msg {
            DpaMsg::Request(ptrs) => {
                // Requests for departed objects chase their stub one hop.
                let ptrs = self.triage_request(ctx, src, ptrs);
                if ptrs.is_empty() {
                    self.coal.recycle(ptrs);
                    return;
                }
                // Adaptive policy: buffer replies only while local work is
                // in progress (the buffering overlaps it, bounded by the
                // deadline wake); an idle or finished owner answers
                // immediately — quiescence means flush.
                if self.cfg.reply_agg_window > 1 && !self.stack.is_empty() && !self.done {
                    self.enqueue_replies(ctx, src, &ptrs);
                } else {
                    let acct = crate::owner::service_request(
                        &self.app,
                        &self.cfg,
                        ctx,
                        src,
                        &ptrs,
                        self.mig.as_ref(),
                    );
                    self.reply_msgs += acct.msgs;
                    self.reply_entries_pushed += acct.entries;
                    self.reply_entries_sent += acct.entries;
                    for &p in &ptrs {
                        let e = self.reply_ptr_acct.entry(p).or_default();
                        e.0 += 1;
                        e.1 += 1;
                    }
                }
                // The consumed payload buffer seeds this node's own request
                // coalescer: in steady state request traffic is
                // allocation-free in both directions.
                self.coal.recycle(ptrs);
            }
            DpaMsg::Reply(objs) => {
                self.install_reply(ctx, src, objs);
                self.drive(ctx);
            }
            DpaMsg::Update { seq, mut entries } => {
                // Exactly-once application under at-least-once delivery:
                // a duplicated Update message is recognized by its
                // (sender, seq) pair and skipped wholesale.
                if !self.seen_updates.insert((src.0, seq)) {
                    return;
                }
                for (ptr, value) in entries.drain(..) {
                    // Reductions always target the birth home — migration
                    // re-routes the read path only.
                    debug_assert!(ptr.is_local_to(ctx.me().0));
                    ctx.charge_overhead(self.cfg.cost.owner_lookup_ns);
                    self.updates_applied += 1;
                    self.app.apply_update(ptr, value);
                    // Remote writes funnel here too: count them toward the
                    // replica's read-mostly demotion window.
                    if let Some(d) = self.repl.as_mut() {
                        d.note_write(ptr);
                    }
                }
                self.upd_coal.recycle(entries);
            }
            DpaMsg::Affinity { seq, mut entries } => {
                if !self.seen_affinity.insert((src.0, seq)) {
                    return;
                }
                self.aff_entries_recv += entries.len() as u64;
                let me = ctx.me().0;
                if let Some(m) = self.mig.as_mut() {
                    for (ptr, n) in entries.drain(..) {
                        ctx.charge_overhead(self.cfg.cost.map_update_ns);
                        m.record_affinity(ptr, src.0, n as u64, me);
                    }
                    // Fresh counts may push an object over the migration
                    // threshold; make sure an owner epoch will look.
                    self.arm_epoch(ctx);
                }
                self.mig_coal.recycle(entries);
            }
            DpaMsg::Migrate { seq, mut entries } => {
                if !self.seen_migrates.insert((src.0, seq)) {
                    return;
                }
                let me = ctx.me().0;
                let mut orphan_replies: FxHashMap<u16, Vec<(GPtr, u32)>> = FxHashMap::default();
                for (ptr, size) in entries.drain(..) {
                    let adopted = self
                        .mig
                        .as_mut()
                        .expect("Migrate received with migration disabled")
                        .adopt(ptr, size);
                    if !adopted {
                        continue; // duplicate shipment: already adopted
                    }
                    ctx.charge_overhead(self.cfg.cost.reply_install_ns);
                    let gen = self.app.object_generation(ptr);
                    if self.pending.contains(ptr) {
                        // Our own request for this object is outstanding;
                        // adoption doubles as its reply.
                        let fresh = self.arrived.insert_gen(ptr, size, gen);
                        debug_assert!(fresh, "pending object was already installed");
                        let was_pending = self.pending.complete(ptr);
                        debug_assert!(was_pending);
                        self.installs += 1;
                        self.map.release_into(ptr, &mut self.stack);
                    } else {
                        self.arrived.preload_gen(ptr, size, gen);
                    }
                    // Forwards that outran this shipment can now be served.
                    if let Some(reqs) = self.orphans.remove(&ptr) {
                        for r in reqs {
                            self.orphans_served += 1;
                            if r != me {
                                orphan_replies.entry(r).or_default().push((ptr, size));
                            } else {
                                // Our own request chased the object here and
                                // parked; the pending branch above installed
                                // the data, and this shipment is the end of
                                // that request's wire journey — no reply
                                // will ever arrive to retire it.
                                self.in_flight.remove(&ptr);
                            }
                        }
                    }
                }
                self.mig_coal.recycle(entries);
                let mut dsts: Vec<u16> = orphan_replies.keys().copied().collect();
                dsts.sort_unstable();
                for dst in dsts {
                    let batch = orphan_replies.remove(&dst).expect("key from this map");
                    ctx.charge_overhead(self.cfg.cost.owner_lookup_ns * batch.len() as u64);
                    self.reply_entries_pushed += batch.len() as u64;
                    for &(p, _) in &batch {
                        self.reply_ptr_acct.entry(p).or_default().0 += 1;
                    }
                    self.send_reply(ctx, dst, batch);
                }
                self.peak_stack = self.peak_stack.max(self.stack.len() as u64);
                self.drive(ctx);
            }
            DpaMsg::Forward { requester, mut entries } => {
                let mut ready: Vec<GPtr> = Vec::new();
                for ptr in entries.drain(..) {
                    if self.mig.as_ref().is_some_and(|m| m.is_adopted(ptr)) {
                        ready.push(ptr);
                    } else {
                        // The forward outran the Migrate; park until the
                        // shipment lands.
                        self.orphans.entry(ptr).or_default().push(requester);
                        self.orphans_total += 1;
                    }
                }
                self.coal.recycle(entries);
                if !ready.is_empty() {
                    self.answer_forwarded(ctx, requester, ready);
                    self.drive(ctx);
                }
            }
            DpaMsg::PhaseDelta { seq, mut entries } => {
                if !self.seen_deltas.insert((src.0, seq)) {
                    return;
                }
                self.delta_msgs_recv += 1;
                self.delta_entries_recv += entries.len() as u64;
                for ptr in entries.drain(..) {
                    ctx.charge_overhead(self.cfg.cost.map_update_ns);
                    if self.replicas_held.contains_key(&ptr) {
                        // A Replicate broadcast already superseded this
                        // copy with the post-boundary generation (the
                        // broadcast may outrun the delta under reordering);
                        // the invalidation is satisfied, not violated.
                        continue;
                    }
                    if self.arrived.invalidate(ptr) {
                        self.stale_invalidated += 1;
                    }
                }
                self.coal.recycle(entries);
                if self.awaiting_deltas.remove(&src.0)
                    && self.awaiting_deltas.is_empty()
                    && self.delta_gated
                {
                    self.delta_gated = false;
                    self.admit(ctx);
                    self.drive(ctx);
                }
            }
            DpaMsg::Replicate { seq, gen, mut entries } => {
                // Exactly-once install under at-least-once delivery.
                if !self.seen_replicates.insert((src.0, seq)) {
                    return;
                }
                self.repl_entries_recv += entries.len() as u64;
                for (ptr, size) in entries.drain(..) {
                    ctx.charge_overhead(self.cfg.cost.reply_install_ns + self.pressure());
                    debug_assert_eq!(
                        ptr.node(),
                        src.0,
                        "replica broadcast from a non-owner for {ptr}"
                    );
                    self.replicas_held.insert(ptr, gen);
                    if self.pending.contains(ptr) {
                        // The broadcast raced our own demand request;
                        // it doubles as the reply.
                        let fresh = self.arrived.insert_gen(ptr, size, gen);
                        debug_assert!(fresh, "pending object was already installed");
                        let was_pending = self.pending.complete(ptr);
                        debug_assert!(was_pending);
                        self.installs += 1;
                        self.map.release_into(ptr, &mut self.stack);
                    } else {
                        // Supersede any carried copy outright: the
                        // broadcast may outrun the owner's PhaseDelta, and
                        // a stale carry must never survive behind the
                        // fresh-replica guard.
                        self.arrived.invalidate(ptr);
                        self.arrived.preload_gen(ptr, size, gen);
                    }
                }
                self.reply_coal.recycle(entries);
                self.peak_stack = self.peak_stack.max(self.stack.len() as u64);
                self.drive(ctx);
            }
        }
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        self.wake_scheduled = false;
        let now = ctx.now().as_ns();
        if self.next_epoch_at.is_some_and(|t| t <= now) {
            self.next_epoch_at = None;
            if !self.done {
                let aff_before = self.affinity_msgs;
                let mig_before = self.mig_entries_pushed;
                self.run_epoch(ctx);
                // Re-arm only while epochs are productive; an idle epoch
                // stops ticking and the next sampled align or affinity
                // report re-arms (`arm_epoch`).
                if self.affinity_msgs > aff_before || self.mig_entries_pushed > mig_before {
                    self.arm_epoch(ctx);
                }
            }
        }
        self.flush_due(ctx);
        self.drive(ctx);
    }

    fn quiescent(&self) -> bool {
        self.done
    }

    fn stall_detail(&self) -> Option<String> {
        if self.done {
            return None;
        }
        let stuck = self.pending.sorted_sample(4);
        let mut detail = format!(
            "iters {}/{} done, {} live; D={} in_flight={} M={} keys/{} threads; stuck on [{}]",
            self.completed_iters,
            self.total_iters,
            self.iter_live.len(),
            self.pending.len(),
            self.in_flight.len(),
            self.map.keys(),
            self.map.live_threads(),
            stuck.join(", ")
        );
        if let Some(m) = &self.mig {
            let orphaned: usize = self.orphans.values().map(Vec::len).sum();
            detail.push_str(&format!(
                "; mig: {} adopted, {} departed, {} orphaned",
                m.adopted_len(),
                m.departed_len(),
                orphaned
            ));
        }
        if let Some(ctl) = &self.strip_ctl {
            detail.push_str(&format!(
                "; strip={} after {} retunes",
                self.strip,
                ctl.retunes()
            ));
        }
        if !self.awaiting_deltas.is_empty() {
            let mut homes: Vec<u16> = self.awaiting_deltas.iter().copied().collect();
            homes.sort_unstable();
            detail.push_str(&format!("; gated awaiting deltas from {homes:?}"));
        }
        if let Some(d) = &self.repl {
            detail.push_str(&format!(
                "; repl: {} dir entries, {} held, {} bcast msgs",
                d.len(),
                self.replicas_held.len(),
                self.replicate_msgs
            ));
        }
        Some(detail)
    }

    fn on_finish(&mut self, stats: &mut NodeStats) {
        stats.bump("iterations", self.completed_iters);
        stats.bump("threads_created", self.threads_created);
        stats.bump("threads_aligned", self.map.total_aligned());
        stats.bump("peak_aligned_threads", self.map.peak_threads());
        stats.bump("peak_map_keys", self.map.peak_keys());
        stats.bump("peak_pending_requests", self.pending.peak());
        stats.bump("requests_issued", self.pending.total());
        stats.bump("request_msgs", self.request_msgs);
        stats.bump("reply_msgs", self.reply_msgs);
        stats.bump("peak_ready_stack", self.peak_stack);
        stats.bump("renamed_peak_bytes", self.arrived.peak_bytes());
        stats.bump("remote_objects_fetched", self.arrived.total_inserts());
        stats.bump(
            "thread_state_peak_bytes",
            self.map.peak_threads() * self.app.work_state_bytes() as u64,
        );
        // Per-path aggregation factors (entries per message, x1000). The
        // request and update paths read their coalescers; the reply path
        // covers both the scheduler and the immediate-service path, so it
        // is computed from the wire counters.
        stats.bump(
            "req_agg_factor_milli",
            (self.coal.aggregation_factor() * 1000.0) as u64,
        );
        stats.bump(
            "upd_agg_factor_milli",
            (self.upd_coal.aggregation_factor() * 1000.0) as u64,
        );
        let reply_agg = if self.reply_msgs == 0 {
            0.0
        } else {
            self.reply_entries_sent as f64 / self.reply_msgs as f64
        };
        stats.bump("reply_agg_factor_milli", (reply_agg * 1000.0) as u64);
        stats.bump("request_entries", self.request_entries_sent);
        stats.bump("reply_entries", self.reply_entries_sent);
        stats.bump("update_entries", self.update_entries_sent);
        stats.bump("peak_in_flight", self.peak_in_flight);
        stats.bump("updates_emitted", self.updates_emitted);
        stats.bump("updates_applied", self.updates_applied);
        stats.bump("update_msgs", self.update_msgs);
        // Strip-controller columns only exist in adaptive runs, so the
        // fixed-strip stat tables stay byte-identical.
        if let Some(ctl) = &self.strip_ctl {
            let sched = ctl.schedule();
            stats.bump("strip_retunes", ctl.retunes());
            stats.bump("strip_final", self.strip as u64);
            stats.bump("strip_min_applied", sched.iter().copied().min().unwrap_or(0) as u64);
            stats.bump("strip_max_applied", sched.iter().copied().max().unwrap_or(0) as u64);
            stats.bump("strip_reversals_damped", ctl.reversals_damped());
        }
        // Differential columns only exist in differential runs, so every
        // other stat table stays byte-identical.
        if self.cfg.differential {
            stats.bump("delta_msgs", self.delta_msgs_sent);
            stats.bump("delta_entries", self.delta_entries_sent);
            stats.bump("carried_entries", self.carried_in);
            stats.bump("stale_invalidated", self.stale_invalidated);
        }
        // Replication columns only exist in replication runs, so every
        // other stat table stays byte-identical.
        if self.cfg.replication {
            stats.bump("replicate_msgs", self.replicate_msgs);
            stats.bump("replicate_entries", self.repl_entries_sent);
            stats.bump("replica_installs", self.repl_entries_recv);
            stats.bump("replicas_held", self.replicas_held.len() as u64);
            if let Some(d) = &self.repl {
                stats.bump("replicated_ptrs", d.len() as u64);
                stats.bump("replica_promotions", d.promotions());
                stats.bump("replica_demotions", d.demotions());
            }
        }
        // Migration columns only exist in migration runs, so the baseline
        // stat tables stay byte-identical.
        if let Some(m) = &self.mig {
            stats.bump("affinity_msgs", self.affinity_msgs);
            stats.bump("affinity_entries", self.aff_entries_sent);
            stats.bump("migrate_msgs", self.migrate_msgs);
            stats.bump("migrate_entries", self.mig_entries_sent);
            stats.bump("forward_msgs", self.forward_msgs);
            stats.bump("forward_entries", self.forwarded_entries);
            stats.bump("objects_adopted", m.migrations_in());
            stats.bump("objects_departed", m.migrations_out());
            stats.bump("overrides_learned", m.overrides_learned());
            stats.bump("orphans_served", self.orphans_served);
        }
    }
}
