//! Adaptive strip-size control: a per-node k-bound feedback controller.
//!
//! The paper strip-mines the top-level `conc` loop with a *static* strip
//! size and leaves picking it to the programmer; its own strip-size figure
//! shows the tension — small strips under-pipeline (too little outstanding
//! communication to overlap), large strips hold an order of magnitude more
//! suspended-thread state and eventually run *slower* (structure-operation
//! pressure). This module replaces the static k-bound with a feedback
//! controller that retunes the strip between strips, per node, from
//! signals the runtime already has:
//!
//! * the **idle fraction** since the last strip boundary (from the node's
//!   own [`sim_net::NodeStats`] — waiting on replies means the pipeline is
//!   too shallow: grow);
//! * the **suspended-thread population** (M's live threads — runtime
//!   structure pressure means the strip is too deep: shrink).
//!
//! # Determinism
//!
//! The controller is a **pure function** of `(params, node, seed)` and the
//! observed stat stream. It reads no wall clock and draws no randomness at
//! decision time; the only "random" input is a per-node *dither* derived
//! once, by a seeded hash of the node id, which offsets the dead band so
//! that identically-loaded nodes do not all retune in lock-step. Replaying
//! the same schedule therefore reproduces the same strip schedule
//! bit-for-bit — which is exactly what the DST harness asserts.
//!
//! # Stability
//!
//! Three mechanisms bound the controller away from oscillation:
//!
//! * **bounds** — the strip is clamped to `[min, max]` always;
//! * **multiplicative moves** — grow ×2 / shrink ÷2, so the strip crosses
//!   the whole `[min, max]` range in `log2(max/min)` boundaries and a
//!   stationary workload converges (and then holds) that fast;
//! * **dead band + reversal cooldown** — inside
//!   `target_idle_milli ± band` the controller holds, and after any move
//!   it refuses to *reverse direction* for [`REVERSAL_COOLDOWN`]
//!   boundaries (same-direction moves stay free), so a grow/shrink limit
//!   cycle cannot form faster than the cooldown.
//!
//! The decision rule is **monotone in idle**: holding the pressure signal
//! fixed, more observed idle never yields a smaller strip decision. The
//! property tests in `tests/stripctl.rs` check all of this on arbitrary
//! stat streams.

use std::fmt;

/// Parameters of the adaptive k-bound controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveStrip {
    /// Smallest strip the controller may pick (≥ 1).
    pub min: usize,
    /// Largest strip the controller may pick (≥ `min`).
    pub max: usize,
    /// Idle-fraction setpoint in thousandths of the boundary-to-boundary
    /// elapsed time. Above the dead band around this target the strip
    /// grows (starved: deepen the pipeline); below it the strip shrinks
    /// (saturated: shed suspended-thread state).
    pub target_idle_milli: u32,
}

impl Default for AdaptiveStrip {
    fn default() -> Self {
        AdaptiveStrip {
            min: 8,
            max: 512,
            target_idle_milli: 100,
        }
    }
}

/// How the k-bound of the top-level loop is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StripMode {
    /// The paper's static strip: exactly `k` iterations live at once.
    Fixed(usize),
    /// Feedback-controlled strip in `[min, max]` (see [`StripController`]).
    Adaptive(AdaptiveStrip),
}

impl StripMode {
    /// `true` for [`StripMode::Adaptive`].
    pub fn is_adaptive(&self) -> bool {
        matches!(self, StripMode::Adaptive(_))
    }

    /// The adaptive parameters, when adaptive.
    pub fn adaptive_params(&self) -> Option<AdaptiveStrip> {
        match self {
            StripMode::Adaptive(p) => Some(*p),
            StripMode::Fixed(_) => None,
        }
    }

    /// The strip the first boundary starts from: `k` for a fixed strip,
    /// the (integer) geometric mean of the bounds for an adaptive one —
    /// equidistant, in doublings, from both bounds.
    pub fn initial_strip(&self) -> usize {
        match *self {
            StripMode::Fixed(k) => k,
            StripMode::Adaptive(p) => isqrt(p.min as u64 * p.max as u64)
                .clamp(p.min as u64, p.max as u64) as usize,
        }
    }
}

impl fmt::Display for StripMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StripMode::Fixed(k) => write!(f, "{k}"),
            StripMode::Adaptive(p) => write!(
                f,
                "adaptive[{}..{}]@{}m",
                p.min, p.max, p.target_idle_milli
            ),
        }
    }
}

/// Integer square root (monotone, exact for squares).
fn isqrt(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

/// What one node observed between two strip boundaries.
///
/// The time fields are *deltas* over the inter-boundary window, in
/// simulated ns; `suspended_threads` is the instantaneous M-mapping
/// population at the boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StripObs {
    /// Useful (application) computation charged in the window.
    pub local_ns: u64,
    /// Runtime/communication overhead charged in the window.
    pub overhead_ns: u64,
    /// Idle time accumulated in the window (waiting on events).
    pub idle_ns: u64,
    /// Threads currently suspended under M (aligned, waiting for data).
    pub suspended_threads: u64,
}

impl StripObs {
    /// Idle fraction of the window in thousandths (0 for an empty window).
    pub fn idle_milli(&self) -> u32 {
        let total = self.local_ns + self.overhead_ns + self.idle_ns;
        if total == 0 {
            0
        } else {
            ((self.idle_ns as u128 * 1000) / total as u128) as u32
        }
    }
}

/// Half-width of the dead band around `target_idle_milli`, in milli.
pub const DEAD_BAND_MILLI: u32 = 50;
/// Maximum per-node dither applied to the dead band, in milli (the seeded
/// tie-break that desynchronizes identically-loaded nodes).
pub const DITHER_SPAN_MILLI: u32 = 25;
/// Boundaries a direction reversal must wait after the last move.
pub const REVERSAL_COOLDOWN: u32 = 2;
/// Suspended threads per unit of strip beyond which the pressure signal
/// forces a shrink regardless of idle (runtime-structure state is growing
/// much faster than the admission window that caused it).
pub const PRESSURE_THREADS_PER_STRIP: u64 = 64;

/// SplitMix64 finalizer (same shape the schedule perturbation uses).
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One direction decision at a strip boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    Shrink,
    Hold,
    Grow,
}

/// The per-node k-bound feedback controller.
///
/// Feed it one [`StripObs`] per strip boundary via
/// [`retune`](StripController::retune); it returns the strip to use for
/// the next strip and appends it to the [`schedule`](Self::schedule) log
/// (which the DST invariant checker audits against the bounds).
#[derive(Clone, Debug)]
pub struct StripController {
    params: AdaptiveStrip,
    /// Current strip (always within `[params.min, params.max]`).
    strip: usize,
    /// Per-node dead-band offset in `[-DITHER_SPAN_MILLI, +DITHER_SPAN_MILLI]`.
    dither_milli: i32,
    /// Boundaries remaining before a direction reversal is allowed.
    cooldown: u32,
    /// Direction of the last applied move (None until the first move).
    last_move: Option<Dir>,
    /// Every strip applied so far, starting with the initial strip.
    schedule: Vec<u32>,
    /// Moves suppressed by the reversal cooldown (diagnostics).
    reversals_damped: u64,
}

impl StripController {
    /// A controller for `node` under `params`, with tie-break dither
    /// derived from `seed ^ node`. Pure: same arguments, same behavior.
    pub fn new(params: AdaptiveStrip, node: u16, seed: u64) -> StripController {
        assert!(params.min >= 1 && params.min <= params.max, "bad bounds");
        let strip = StripMode::Adaptive(params)
            .initial_strip()
            .clamp(params.min, params.max);
        let span = 2 * DITHER_SPAN_MILLI + 1;
        let dither_milli =
            (splitmix(seed ^ (node as u64).wrapping_mul(0xD1B5)) % span as u64) as i32
                - DITHER_SPAN_MILLI as i32;
        StripController {
            params,
            strip,
            dither_milli,
            cooldown: 0,
            last_move: None,
            schedule: vec![strip as u32],
            reversals_damped: 0,
        }
    }

    /// The strip currently in force.
    pub fn strip(&self) -> usize {
        self.strip
    }

    /// The controller's parameters.
    pub fn params(&self) -> &AdaptiveStrip {
        &self.params
    }

    /// Every strip applied so far (initial strip first).
    pub fn schedule(&self) -> &[u32] {
        &self.schedule
    }

    /// Retunes performed (strip boundaries observed).
    pub fn retunes(&self) -> u64 {
        self.schedule.len() as u64 - 1
    }

    /// Moves suppressed by the reversal cooldown.
    pub fn reversals_damped(&self) -> u64 {
        self.reversals_damped
    }

    /// The raw direction decision for an observation, before hysteresis.
    ///
    /// Monotone in `obs.idle_milli()` for a fixed pressure signal: more
    /// idle never decides a smaller strip.
    fn decide(&self, obs: &StripObs) -> Dir {
        // Pressure overrides: suspended-thread state has outgrown the
        // admission window that justified it. Idle cannot rescue a strip
        // that is drowning the runtime structures.
        if obs.suspended_threads > PRESSURE_THREADS_PER_STRIP * self.strip as u64 {
            return Dir::Shrink;
        }
        let target = self.params.target_idle_milli as i64 + self.dither_milli as i64;
        let idle = obs.idle_milli() as i64;
        if idle > target + DEAD_BAND_MILLI as i64 {
            Dir::Grow
        } else if idle < target - DEAD_BAND_MILLI as i64 {
            Dir::Shrink
        } else {
            Dir::Hold
        }
    }

    /// Observe one inter-boundary window and return the strip for the
    /// next strip. Appends to the schedule log exactly once per call.
    pub fn retune(&mut self, obs: &StripObs) -> usize {
        let mut dir = self.decide(obs);
        // Hysteresis: a reversal (grow after shrink or vice versa) is
        // suppressed while the cooldown from the last move runs down.
        if self.cooldown > 0 {
            self.cooldown -= 1;
            let reverses = matches!(
                (self.last_move, dir),
                (Some(Dir::Grow), Dir::Shrink) | (Some(Dir::Shrink), Dir::Grow)
            );
            if reverses {
                self.reversals_damped += 1;
                dir = Dir::Hold;
            }
        }
        let next = match dir {
            Dir::Grow => (self.strip.saturating_mul(2)).min(self.params.max),
            Dir::Shrink => (self.strip / 2).max(self.params.min),
            Dir::Hold => self.strip,
        };
        if next != self.strip {
            self.strip = next;
            self.last_move = Some(dir);
            self.cooldown = REVERSAL_COOLDOWN;
        }
        self.schedule.push(self.strip as u32);
        self.strip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_obs(idle_milli: u32) -> StripObs {
        // A 1_000_000 ns window with the requested idle share, no pressure.
        let idle_ns = idle_milli as u64 * 1_000;
        StripObs {
            local_ns: 1_000_000 - idle_ns,
            overhead_ns: 0,
            idle_ns,
            suspended_threads: 0,
        }
    }

    fn ctl() -> StripController {
        StripController::new(AdaptiveStrip::default(), 0, 0)
    }

    #[test]
    fn initial_strip_is_geometric_mean_within_bounds() {
        let p = AdaptiveStrip {
            min: 8,
            max: 512,
            target_idle_milli: 100,
        };
        let c = StripController::new(p, 3, 42);
        assert_eq!(c.strip(), 64); // sqrt(8 * 512)
        assert_eq!(c.schedule(), &[64]);
        let tight = StripController::new(
            AdaptiveStrip {
                min: 50,
                max: 50,
                target_idle_milli: 100,
            },
            0,
            0,
        );
        assert_eq!(tight.strip(), 50);
    }

    #[test]
    fn starvation_grows_saturation_shrinks() {
        let mut c = ctl();
        let s0 = c.strip();
        let grown = c.retune(&idle_obs(900));
        assert_eq!(grown, s0 * 2, "far above target: grow x2");
        let mut c = ctl();
        let shrunk = c.retune(&idle_obs(0));
        assert_eq!(shrunk, s0 / 2, "far below target: shrink /2");
    }

    #[test]
    fn dead_band_holds() {
        let mut c = ctl();
        let s0 = c.strip();
        // Dither is at most ±25 milli; 100 ± (50 - 25) is always in band.
        for _ in 0..10 {
            assert_eq!(c.retune(&idle_obs(100)), s0);
        }
        assert_eq!(c.retunes(), 10);
    }

    #[test]
    fn bounds_are_hard() {
        let mut c = ctl();
        for _ in 0..64 {
            c.retune(&idle_obs(1000));
        }
        assert_eq!(c.strip(), c.params().max);
        for _ in 0..64 {
            c.retune(&idle_obs(0));
        }
        assert_eq!(c.strip(), c.params().min);
        for &s in c.schedule() {
            assert!((s as usize) >= c.params().min && (s as usize) <= c.params().max);
        }
    }

    #[test]
    fn pressure_forces_shrink_despite_idle() {
        let mut c = ctl();
        let s0 = c.strip();
        let obs = StripObs {
            suspended_threads: PRESSURE_THREADS_PER_STRIP * s0 as u64 + 1,
            ..idle_obs(900)
        };
        assert_eq!(c.retune(&obs), s0 / 2);
    }

    #[test]
    fn reversal_cooldown_damps_oscillation() {
        let mut c = ctl();
        c.retune(&idle_obs(1000)); // grow; cooldown armed
        let after_grow = c.strip();
        let v = c.retune(&idle_obs(0)); // immediate reversal: damped
        assert_eq!(v, after_grow);
        assert_eq!(c.reversals_damped(), 1);
        // Same-direction moves are never damped.
        let mut c = ctl();
        let a = c.retune(&idle_obs(1000));
        let b = c.retune(&idle_obs(1000));
        assert_eq!(b, a * 2);
    }

    #[test]
    fn deterministic_replay() {
        let stream: Vec<StripObs> = (0..40)
            .map(|i| StripObs {
                local_ns: 1000 + i * 37,
                overhead_ns: i * 11,
                idle_ns: (i * 97) % 1500,
                suspended_threads: i * 13 % 900,
            })
            .collect();
        let run = |node: u16, seed: u64| {
            let mut c = StripController::new(AdaptiveStrip::default(), node, seed);
            for o in &stream {
                c.retune(o);
            }
            c.schedule().to_vec()
        };
        assert_eq!(run(3, 7), run(3, 7), "same node+seed: identical schedule");
        // Different nodes may differ (dither), but both stay in bounds.
        for node in 0..4 {
            for &s in &run(node, 7) {
                assert!((8..=512).contains(&(s as usize)));
            }
        }
    }

    #[test]
    fn decision_is_monotone_in_idle() {
        let c = ctl();
        let mut last = Dir::Shrink;
        for idle in 0..=1000 {
            let d = c.decide(&idle_obs(idle));
            let rank = |d: Dir| match d {
                Dir::Shrink => 0,
                Dir::Hold => 1,
                Dir::Grow => 2,
            };
            assert!(
                rank(d) >= rank(last),
                "decision regressed at idle={idle}: {last:?} -> {d:?}"
            );
            last = d;
        }
    }

    #[test]
    fn stationary_stream_converges_within_log2_range() {
        // From any start, a constant observation pins the strip within
        // log2(max/min) boundaries, then holds it forever.
        for idle in [0, 100, 1000] {
            let mut c = ctl();
            let budget = (c.params().max / c.params().min).ilog2() as usize + 1;
            for _ in 0..budget {
                c.retune(&idle_obs(idle));
            }
            let settled = c.strip();
            for _ in 0..16 {
                assert_eq!(c.retune(&idle_obs(idle)), settled);
            }
        }
    }

    #[test]
    fn isqrt_is_exact_on_squares() {
        for n in 0..200u64 {
            assert_eq!(isqrt(n * n), n);
        }
        assert_eq!(isqrt(10), 3);
        assert_eq!(StripMode::Fixed(50).initial_strip(), 50);
        assert!(!StripMode::Fixed(50).is_adaptive());
        assert!(StripMode::Adaptive(AdaptiveStrip::default()).is_adaptive());
    }
}
