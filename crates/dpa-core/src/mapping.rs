//! **M** — the explicit pointer → dependent-threads mapping.
//!
//! This table is the heart of DPA: "an explicit mapping from pointers to
//! dependent threads is updated at thread creation and is used to
//! dynamically schedule both threads and communication". A thread that
//! needs object `p` is *aligned* under `p`; when `p` arrives, every thread
//! aligned under it is released in one batch — the dynamic analogue of
//! tiling's iteration grouping.

use crate::fxmap::FxHashMap;
use global_heap::GPtr;

/// Pointer → dependent threads, with high-water-mark accounting for the
/// paper's thread-statistics table.
#[derive(Clone, Debug)]
pub struct PointerMap<W> {
    map: FxHashMap<GPtr, Vec<W>>,
    live_threads: u64,
    peak_threads: u64,
    peak_keys: u64,
    total_aligned: u64,
}

impl<W> Default for PointerMap<W> {
    fn default() -> Self {
        PointerMap {
            map: FxHashMap::default(),
            live_threads: 0,
            peak_threads: 0,
            peak_keys: 0,
            total_aligned: 0,
        }
    }
}

impl<W> PointerMap<W> {
    /// An empty mapping.
    pub fn new() -> PointerMap<W> {
        PointerMap::default()
    }

    /// Align `thread` under `ptr`. Returns `true` when this is the first
    /// thread aligned under `ptr` — the caller must then ensure a request
    /// for `ptr` is (or will be) outstanding.
    pub fn align(&mut self, ptr: GPtr, thread: W) -> bool {
        debug_assert!(!ptr.is_null());
        self.total_aligned += 1;
        self.live_threads += 1;
        self.peak_threads = self.peak_threads.max(self.live_threads);
        let waiters = self.map.entry(ptr).or_default();
        waiters.push(thread);
        let first = waiters.len() == 1;
        if first {
            self.peak_keys = self.peak_keys.max(self.map.len() as u64);
        }
        first
    }

    /// Release every thread aligned under `ptr` (its data has arrived).
    /// Returns an empty vec if none were waiting.
    pub fn release(&mut self, ptr: GPtr) -> Vec<W> {
        match self.map.remove(&ptr) {
            Some(v) => {
                self.live_threads -= v.len() as u64;
                v
            }
            None => Vec::new(),
        }
    }

    /// Threads currently aligned (waiting) across all pointers.
    pub fn live_threads(&self) -> u64 {
        self.live_threads
    }

    /// Distinct pointers with waiters.
    pub fn keys(&self) -> usize {
        self.map.len()
    }

    /// `true` when no thread is waiting.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of threads waiting on `ptr` right now.
    pub fn waiters(&self, ptr: GPtr) -> usize {
        self.map.get(&ptr).map_or(0, |v| v.len())
    }

    /// Max simultaneous aligned threads over the phase.
    pub fn peak_threads(&self) -> u64 {
        self.peak_threads
    }

    /// Max simultaneous distinct pointers with waiters over the phase.
    pub fn peak_keys(&self) -> u64 {
        self.peak_keys
    }

    /// Total align operations over the phase.
    pub fn total_aligned(&self) -> u64 {
        self.total_aligned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use global_heap::ObjClass;

    fn p(i: u64) -> GPtr {
        GPtr::new(3, ObjClass(0), i)
    }

    #[test]
    fn first_alignment_reports_true() {
        let mut m: PointerMap<u32> = PointerMap::new();
        assert!(m.align(p(1), 100));
        assert!(!m.align(p(1), 101));
        assert!(m.align(p(2), 200));
        assert_eq!(m.waiters(p(1)), 2);
        assert_eq!(m.keys(), 2);
    }

    #[test]
    fn release_returns_all_in_alignment_order() {
        let mut m: PointerMap<u32> = PointerMap::new();
        m.align(p(1), 1);
        m.align(p(1), 2);
        m.align(p(1), 3);
        assert_eq!(m.release(p(1)), vec![1, 2, 3]);
        assert!(m.is_empty());
        assert_eq!(m.release(p(1)), Vec::<u32>::new());
    }

    #[test]
    fn peaks_track_high_water() {
        let mut m: PointerMap<u32> = PointerMap::new();
        m.align(p(1), 1);
        m.align(p(2), 2);
        m.align(p(2), 3);
        assert_eq!(m.peak_threads(), 3);
        assert_eq!(m.peak_keys(), 2);
        m.release(p(1));
        m.release(p(2));
        assert_eq!(m.live_threads(), 0);
        assert_eq!(m.peak_threads(), 3);
        assert_eq!(m.total_aligned(), 3);
    }

    #[test]
    fn no_thread_is_lost() {
        // Conservation: aligned == released + still-live, under any
        // interleaving.
        let mut m: PointerMap<u64> = PointerMap::new();
        let mut released = 0u64;
        for i in 0..500u64 {
            m.align(p(i % 17), i);
            if i % 5 == 0 {
                released += m.release(p(i % 13)) .len() as u64;
            }
        }
        assert_eq!(500, released + m.live_threads());
    }
}
