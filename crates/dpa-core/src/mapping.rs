//! **M** — the explicit pointer → dependent-threads mapping.
//!
//! This table is the heart of DPA: "an explicit mapping from pointers to
//! dependent threads is updated at thread creation and is used to
//! dynamically schedule both threads and communication". A thread that
//! needs object `p` is *aligned* under `p`; when `p` arrives, every thread
//! aligned under it is released in one batch — the dynamic analogue of
//! tiling's iteration grouping.
//!
//! # Layout
//!
//! The table is structure-of-arrays over **dense object ids**: each
//! pointer is interned once, at its first alignment, into a `u32` id that
//! indexes flat side tables (`ptrs`, `waiters`). The hash map is consulted
//! only to intern/look up the id; the waiter lists themselves live in a
//! dense slab whose per-id vectors are *retained* across release/align
//! cycles — a pointer that aligns threads again after a release reuses its
//! old list's capacity, so steady-state alignment never touches the
//! allocator. [`PointerMap::release_into`] drains a list straight into the
//! caller's run stack without allocating at all.

use crate::fxmap::FxHashMap;
use global_heap::GPtr;

/// Pointer → dependent threads, with high-water-mark accounting for the
/// paper's thread-statistics table. SoA: dense-id interner + flat waiter
/// slab.
#[derive(Clone, Debug)]
pub struct PointerMap<W> {
    /// Pointer → dense id, assigned at first alignment and stable for the
    /// map's lifetime.
    ids: FxHashMap<GPtr, u32>,
    /// Dense id → pointer (the interner's inverse, for diagnostics and
    /// id-order iteration).
    ptrs: Vec<GPtr>,
    /// Dense id → threads currently aligned under that pointer. Vectors
    /// are retained (cleared, not dropped) across release cycles.
    waiters: Vec<Vec<W>>,
    /// Number of ids with a nonempty waiter list (= `keys()`).
    nonempty: usize,
    live_threads: u64,
    peak_threads: u64,
    peak_keys: u64,
    total_aligned: u64,
}

impl<W> Default for PointerMap<W> {
    fn default() -> Self {
        PointerMap {
            ids: FxHashMap::default(),
            ptrs: Vec::new(),
            waiters: Vec::new(),
            nonempty: 0,
            live_threads: 0,
            peak_threads: 0,
            peak_keys: 0,
            total_aligned: 0,
        }
    }
}

impl<W> PointerMap<W> {
    /// An empty mapping.
    pub fn new() -> PointerMap<W> {
        PointerMap::default()
    }

    /// Intern `ptr`, returning its dense id (assigning the next one on
    /// first sight).
    #[inline]
    fn intern(&mut self, ptr: GPtr) -> u32 {
        if let Some(&id) = self.ids.get(&ptr) {
            return id;
        }
        let id = u32::try_from(self.ptrs.len()).expect("pointer-map id overflow");
        self.ids.insert(ptr, id);
        self.ptrs.push(ptr);
        self.waiters.push(Vec::new());
        id
    }

    /// Align `thread` under `ptr`. Returns `true` when this is the first
    /// thread aligned under `ptr` — the caller must then ensure a request
    /// for `ptr` is (or will be) outstanding.
    pub fn align(&mut self, ptr: GPtr, thread: W) -> bool {
        debug_assert!(!ptr.is_null());
        self.total_aligned += 1;
        self.live_threads += 1;
        self.peak_threads = self.peak_threads.max(self.live_threads);
        let id = self.intern(ptr);
        let list = &mut self.waiters[id as usize];
        list.push(thread);
        let first = list.len() == 1;
        if first {
            self.nonempty += 1;
            self.peak_keys = self.peak_keys.max(self.nonempty as u64);
        }
        first
    }

    /// Release every thread aligned under `ptr` (its data has arrived).
    /// Returns an empty vec if none were waiting.
    ///
    /// Allocates the returned vector; the hot path uses
    /// [`release_into`](PointerMap::release_into) instead.
    pub fn release(&mut self, ptr: GPtr) -> Vec<W> {
        let mut out = Vec::new();
        self.release_into(ptr, &mut out);
        out
    }

    /// Release every thread aligned under `ptr`, appending them (in
    /// alignment order) to `out`. The slot's storage is retained for the
    /// pointer's next alignment, so neither side allocates.
    pub fn release_into(&mut self, ptr: GPtr, out: &mut Vec<W>) {
        if let Some(&id) = self.ids.get(&ptr) {
            let list = &mut self.waiters[id as usize];
            if !list.is_empty() {
                self.live_threads -= list.len() as u64;
                self.nonempty -= 1;
                out.append(list);
            }
        }
    }

    /// Threads currently aligned (waiting) across all pointers.
    pub fn live_threads(&self) -> u64 {
        self.live_threads
    }

    /// Distinct pointers with waiters.
    pub fn keys(&self) -> usize {
        self.nonempty
    }

    /// `true` when no thread is waiting.
    pub fn is_empty(&self) -> bool {
        self.nonempty == 0
    }

    /// Number of threads waiting on `ptr` right now.
    pub fn waiters(&self, ptr: GPtr) -> usize {
        match self.ids.get(&ptr) {
            Some(&id) => self.waiters[id as usize].len(),
            None => 0,
        }
    }

    /// Distinct pointers ever interned (dense-id space size). Interning is
    /// permanent: a pointer's id survives release cycles.
    pub fn interned(&self) -> usize {
        self.ptrs.len()
    }

    /// Max simultaneous aligned threads over the phase.
    pub fn peak_threads(&self) -> u64 {
        self.peak_threads
    }

    /// Max simultaneous distinct pointers with waiters over the phase.
    pub fn peak_keys(&self) -> u64 {
        self.peak_keys
    }

    /// Total align operations over the phase.
    pub fn total_aligned(&self) -> u64 {
        self.total_aligned
    }

    /// Patch the mapping across a phase barrier instead of rebuilding it:
    /// waiter lists are cleared (their capacity retained) and the per-phase
    /// statistics are zeroed, but the interner — pointer → dense id — and
    /// the warmed list slab survive. The next phase's alignments over a
    /// mostly-unchanged pointer set then reuse ids and capacities and never
    /// touch the allocator; only genuinely new pointers intern fresh slots.
    pub fn reset_for_phase(&mut self) {
        for list in &mut self.waiters {
            list.clear();
        }
        self.nonempty = 0;
        self.live_threads = 0;
        self.peak_threads = 0;
        self.peak_keys = 0;
        self.total_aligned = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use global_heap::ObjClass;

    fn p(i: u64) -> GPtr {
        GPtr::new(3, ObjClass(0), i)
    }

    #[test]
    fn first_alignment_reports_true() {
        let mut m: PointerMap<u32> = PointerMap::new();
        assert!(m.align(p(1), 100));
        assert!(!m.align(p(1), 101));
        assert!(m.align(p(2), 200));
        assert_eq!(m.waiters(p(1)), 2);
        assert_eq!(m.keys(), 2);
    }

    #[test]
    fn release_returns_all_in_alignment_order() {
        let mut m: PointerMap<u32> = PointerMap::new();
        m.align(p(1), 1);
        m.align(p(1), 2);
        m.align(p(1), 3);
        assert_eq!(m.release(p(1)), vec![1, 2, 3]);
        assert!(m.is_empty());
        assert_eq!(m.release(p(1)), Vec::<u32>::new());
    }

    #[test]
    fn peaks_track_high_water() {
        let mut m: PointerMap<u32> = PointerMap::new();
        m.align(p(1), 1);
        m.align(p(2), 2);
        m.align(p(2), 3);
        assert_eq!(m.peak_threads(), 3);
        assert_eq!(m.peak_keys(), 2);
        m.release(p(1));
        m.release(p(2));
        assert_eq!(m.live_threads(), 0);
        assert_eq!(m.peak_threads(), 3);
        assert_eq!(m.total_aligned(), 3);
    }

    #[test]
    fn no_thread_is_lost() {
        // Conservation: aligned == released + still-live, under any
        // interleaving.
        let mut m: PointerMap<u64> = PointerMap::new();
        let mut released = 0u64;
        for i in 0..500u64 {
            m.align(p(i % 17), i);
            if i % 5 == 0 {
                released += m.release(p(i % 13)).len() as u64;
            }
        }
        assert_eq!(500, released + m.live_threads());
    }

    #[test]
    fn ids_are_interned_once_and_reused() {
        let mut m: PointerMap<u32> = PointerMap::new();
        m.align(p(1), 1);
        m.align(p(2), 2);
        assert_eq!(m.interned(), 2);
        m.release(p(1));
        assert_eq!(m.interned(), 2, "release keeps the id");
        m.align(p(1), 3);
        assert_eq!(m.interned(), 2, "re-align reuses the id");
        assert_eq!(m.keys(), 2);
        m.align(p(9), 4);
        assert_eq!(m.interned(), 3);
    }

    #[test]
    fn reset_for_phase_keeps_interner_zeroes_stats() {
        let mut m: PointerMap<u32> = PointerMap::new();
        m.align(p(1), 1);
        m.align(p(2), 2);
        m.release(p(1));
        m.reset_for_phase();
        assert!(m.is_empty());
        assert_eq!(m.live_threads(), 0);
        assert_eq!(m.peak_threads(), 0);
        assert_eq!(m.peak_keys(), 0);
        assert_eq!(m.total_aligned(), 0);
        assert_eq!(m.interned(), 2, "the interner survives the barrier");
        // Waiters left behind (e.g. a carried entry covering them) are
        // dropped; a fresh phase starts clean.
        assert_eq!(m.waiters(p(2)), 0);
        assert!(m.align(p(1), 9), "re-align is first again");
        assert_eq!(m.interned(), 2, "re-align reuses the dense id");
    }

    #[test]
    fn release_into_appends_and_keeps_capacity() {
        let mut m: PointerMap<u32> = PointerMap::new();
        for i in 0..16 {
            m.align(p(7), i);
        }
        let mut stack = vec![999u32];
        m.release_into(p(7), &mut stack);
        assert_eq!(stack.len(), 17);
        assert_eq!(stack[0], 999, "appends after existing entries");
        assert_eq!(&stack[1..4], &[0, 1, 2]);
        assert!(m.is_empty());
        assert_eq!(m.live_threads(), 0);
        // The slot's storage survives for the next alignment burst.
        m.align(p(7), 1);
        assert_eq!(m.waiters(p(7)), 1);
        assert_eq!(m.keys(), 1);
    }
}
