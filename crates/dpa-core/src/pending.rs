//! **D** — the table of outstanding remote requests.
//!
//! A pointer enters D when a request for it is handed to the communication
//! scheduler and leaves when its reply installs the object. Membership
//! suppresses duplicate requests (many threads aligned under one pointer
//! cause exactly one fetch), and the peak size is the "max outstanding
//! requests" column of the paper's statistics table.

use global_heap::GPtr;
use std::collections::HashSet;

/// Outstanding remote requests for one node.
#[derive(Clone, Debug, Default)]
pub struct PendingRequests {
    set: HashSet<GPtr>,
    peak: u64,
    total: u64,
}

impl PendingRequests {
    /// An empty table.
    pub fn new() -> PendingRequests {
        PendingRequests::default()
    }

    /// Mark `ptr` requested. Returns `false` if it was already outstanding
    /// (the duplicate must not generate a second message).
    pub fn insert(&mut self, ptr: GPtr) -> bool {
        debug_assert!(!ptr.is_null());
        let fresh = self.set.insert(ptr);
        if fresh {
            self.total += 1;
            self.peak = self.peak.max(self.set.len() as u64);
        }
        fresh
    }

    /// Clear `ptr` on reply arrival. Returns `false` for an unexpected
    /// reply (a protocol bug upstream or duplicated delivery).
    pub fn complete(&mut self, ptr: GPtr) -> bool {
        self.set.remove(&ptr)
    }

    /// `true` if a request for `ptr` is in flight (or buffered).
    pub fn contains(&self, ptr: GPtr) -> bool {
        self.set.contains(&ptr)
    }

    /// Iterate over the outstanding pointers (arbitrary order). Used by the
    /// stall reporter to name exactly which fetches never completed.
    pub fn iter(&self) -> impl Iterator<Item = &GPtr> {
        self.set.iter()
    }

    /// The `n` smallest outstanding pointers, rendered. Sorted so that
    /// snapshots and stall reports are byte-identical across runs (the
    /// backing set's iteration order is seeded per-process).
    pub fn sorted_sample(&self, n: usize) -> Vec<String> {
        let mut all: Vec<&GPtr> = self.set.iter().collect();
        all.sort_unstable();
        all.into_iter().take(n).map(|p| p.to_string()).collect()
    }

    /// Requests currently outstanding.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Max simultaneous outstanding requests over the phase.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Total distinct requests issued over the phase.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use global_heap::ObjClass;

    fn p(i: u64) -> GPtr {
        GPtr::new(1, ObjClass(0), i)
    }

    #[test]
    fn duplicate_suppression() {
        let mut d = PendingRequests::new();
        assert!(d.insert(p(1)));
        assert!(!d.insert(p(1)));
        assert!(d.contains(p(1)));
        assert_eq!(d.len(), 1);
        assert_eq!(d.total(), 1);
    }

    #[test]
    fn complete_clears() {
        let mut d = PendingRequests::new();
        d.insert(p(1));
        assert!(d.complete(p(1)));
        assert!(!d.complete(p(1)), "double completion must be visible");
        assert!(d.is_empty());
    }

    #[test]
    fn sorted_sample_is_deterministic() {
        let mut d = PendingRequests::new();
        for i in [9, 3, 7, 1, 5] {
            d.insert(p(i));
        }
        let sample = d.sorted_sample(3);
        assert_eq!(sample, vec![p(1).to_string(), p(3).to_string(), p(5).to_string()]);
        assert_eq!(d.sorted_sample(10).len(), 5);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut d = PendingRequests::new();
        d.insert(p(1));
        d.insert(p(2));
        d.insert(p(3));
        d.complete(p(2));
        d.insert(p(4));
        assert_eq!(d.peak(), 3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.total(), 4);
    }
}
