//! **D** — the table of outstanding remote requests.
//!
//! A pointer enters D when a request for it is handed to the communication
//! scheduler and leaves when its reply installs the object. Membership
//! suppresses duplicate requests (many threads aligned under one pointer
//! cause exactly one fetch), and the peak size is the "max outstanding
//! requests" column of the paper's statistics table.
//!
//! # Layout
//!
//! Like the M mapping, the table is structure-of-arrays over dense object
//! ids: pointers are interned once (at their first request) into a `u32`
//! id indexing flat `ptrs`/`present` side tables. Insert/complete/contains
//! are one Fx-hash probe plus a flag flip — no tombstone churn — and
//! [`iter`](PendingRequests::iter) walks the dense side table in id
//! (first-request) order, which is deterministic for a fixed request
//! history, unlike a std `HashSet`'s per-process seeded order.

use crate::fxmap::FxHashMap;
use global_heap::GPtr;

/// Outstanding remote requests for one node. SoA: dense-id interner + flat
/// presence flags.
#[derive(Clone, Debug, Default)]
pub struct PendingRequests {
    /// Pointer → dense id, assigned at first request and stable for the
    /// table's lifetime.
    ids: FxHashMap<GPtr, u32>,
    /// Dense id → pointer (interner inverse; iterated for reports).
    ptrs: Vec<GPtr>,
    /// Dense id → currently outstanding?
    present: Vec<bool>,
    /// Number of `true` flags (= `len()`).
    live: usize,
    peak: u64,
    total: u64,
}

impl PendingRequests {
    /// An empty table.
    pub fn new() -> PendingRequests {
        PendingRequests::default()
    }

    /// Mark `ptr` requested. Returns `false` if it was already outstanding
    /// (the duplicate must not generate a second message).
    pub fn insert(&mut self, ptr: GPtr) -> bool {
        debug_assert!(!ptr.is_null());
        let id = match self.ids.get(&ptr) {
            Some(&id) => {
                if self.present[id as usize] {
                    return false;
                }
                id
            }
            None => {
                let id = u32::try_from(self.ptrs.len()).expect("pending-table id overflow");
                self.ids.insert(ptr, id);
                self.ptrs.push(ptr);
                self.present.push(false);
                id
            }
        };
        self.present[id as usize] = true;
        self.live += 1;
        self.total += 1;
        self.peak = self.peak.max(self.live as u64);
        true
    }

    /// Clear `ptr` on reply arrival. Returns `false` for an unexpected
    /// reply (a protocol bug upstream or duplicated delivery).
    pub fn complete(&mut self, ptr: GPtr) -> bool {
        match self.ids.get(&ptr) {
            Some(&id) if self.present[id as usize] => {
                self.present[id as usize] = false;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// `true` if a request for `ptr` is in flight (or buffered).
    pub fn contains(&self, ptr: GPtr) -> bool {
        match self.ids.get(&ptr) {
            Some(&id) => self.present[id as usize],
            None => false,
        }
    }

    /// Iterate over the outstanding pointers in dense-id (first-request)
    /// order — deterministic for a fixed request history, independent of
    /// any hash seed. Used by the stall reporter to name exactly which
    /// fetches never completed.
    pub fn iter(&self) -> impl Iterator<Item = &GPtr> {
        self.ptrs
            .iter()
            .zip(self.present.iter())
            .filter_map(|(p, &live)| live.then_some(p))
    }

    /// Distinct pointers ever requested (dense-id space size). Interning
    /// is permanent: an id survives completion.
    pub fn interned(&self) -> usize {
        self.ptrs.len()
    }

    /// The `n` smallest outstanding pointers, rendered. Sorted by pointer
    /// value so that snapshots and stall reports are byte-identical for
    /// the same *set* of outstanding requests, regardless of the order in
    /// which they were issued.
    pub fn sorted_sample(&self, n: usize) -> Vec<String> {
        let mut all: Vec<&GPtr> = self.iter().collect();
        all.sort_unstable();
        all.into_iter().take(n).map(|p| p.to_string()).collect()
    }

    /// Requests currently outstanding.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Max simultaneous outstanding requests over the phase.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Total requests issued over the phase (re-requesting a completed
    /// pointer counts again; simultaneous duplicates do not).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Patch the table across a phase barrier instead of rebuilding it:
    /// presence flags drop and per-phase statistics zero, but the interner
    /// survives, so requests for pointers the node fetched in earlier
    /// phases flip an existing flag instead of growing the table.
    pub fn reset_for_phase(&mut self) {
        for f in &mut self.present {
            *f = false;
        }
        self.live = 0;
        self.peak = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use global_heap::ObjClass;

    fn p(i: u64) -> GPtr {
        GPtr::new(1, ObjClass(0), i)
    }

    #[test]
    fn duplicate_suppression() {
        let mut d = PendingRequests::new();
        assert!(d.insert(p(1)));
        assert!(!d.insert(p(1)));
        assert!(d.contains(p(1)));
        assert_eq!(d.len(), 1);
        assert_eq!(d.total(), 1);
    }

    #[test]
    fn complete_clears() {
        let mut d = PendingRequests::new();
        d.insert(p(1));
        assert!(d.complete(p(1)));
        assert!(!d.complete(p(1)), "double completion must be visible");
        assert!(d.is_empty());
    }

    #[test]
    fn sorted_sample_is_deterministic() {
        let mut d = PendingRequests::new();
        for i in [9, 3, 7, 1, 5] {
            d.insert(p(i));
        }
        let sample = d.sorted_sample(3);
        assert_eq!(sample, vec![p(1).to_string(), p(3).to_string(), p(5).to_string()]);
        assert_eq!(d.sorted_sample(10).len(), 5);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut d = PendingRequests::new();
        d.insert(p(1));
        d.insert(p(2));
        d.insert(p(3));
        d.complete(p(2));
        d.insert(p(4));
        assert_eq!(d.peak(), 3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn reinsert_after_complete_is_fresh() {
        let mut d = PendingRequests::new();
        assert!(d.insert(p(1)));
        assert!(d.complete(p(1)));
        assert!(d.insert(p(1)), "a completed pointer may be requested again");
        assert_eq!(d.total(), 2, "re-request counts as a new fetch");
        assert_eq!(d.interned(), 1, "but the dense id is reused");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn iter_is_dense_id_order() {
        let mut d = PendingRequests::new();
        for i in [9, 3, 7] {
            d.insert(p(i));
        }
        d.complete(p(3));
        let seen: Vec<GPtr> = d.iter().copied().collect();
        assert_eq!(seen, vec![p(9), p(7)], "first-request order, minus completed");
    }

    #[test]
    fn reset_for_phase_keeps_interner_zeroes_stats() {
        let mut d = PendingRequests::new();
        d.insert(p(1));
        d.insert(p(2));
        d.complete(p(1));
        d.reset_for_phase();
        assert!(d.is_empty());
        assert!(!d.contains(p(2)), "outstanding flags drop at the barrier");
        assert_eq!(d.peak(), 0);
        assert_eq!(d.total(), 0);
        assert_eq!(d.interned(), 2, "the interner survives the barrier");
        assert!(d.insert(p(2)), "re-request is fresh");
        assert_eq!(d.interned(), 2, "and reuses the dense id");
    }

    /// Regression for the latent ordering trap: two tables holding the same
    /// *set* of outstanding requests must render identical samples and
    /// (sorted) iterations even when the requests were issued in different
    /// orders. A std `HashSet` backing made this hold only by luck of the
    /// per-process seed.
    #[test]
    fn snapshot_is_insertion_order_independent() {
        let mut a = PendingRequests::new();
        let mut b = PendingRequests::new();
        for i in [5, 1, 9, 4, 8] {
            a.insert(p(i));
        }
        for i in [8, 4, 9, 1, 5] {
            b.insert(p(i));
        }
        a.complete(p(4));
        b.complete(p(4));
        assert_eq!(a.sorted_sample(4), b.sorted_sample(4));
        assert_eq!(a.sorted_sample(16), b.sorted_sample(16));
        let mut ia: Vec<GPtr> = a.iter().copied().collect();
        let mut ib: Vec<GPtr> = b.iter().copied().collect();
        ia.sort_unstable();
        ib.sort_unstable();
        assert_eq!(ia, ib);
    }
}
