//! Phase orchestration: build a machine for a configuration, run it, and
//! hand back both the timing report and the per-node application state.

use crate::config::{DpaConfig, Variant};
use crate::invariant::NodeSnapshot;
use crate::proc_caching::CachingProc;
use crate::proc_dpa::DpaProc;
use crate::work::PtrApp;
use sim_net::{FaultPlan, Machine, NetConfig, NodeId, RunReport, Trace};

/// Run one phase of `app` instances (one per node) under `cfg` on a
/// `nodes`-node machine with network `net`.
///
/// `mk` builds the per-node application; `collect` is called once per node
/// after the run with the node id and its final application state (e.g. to
/// gather computed forces). Panics if the run stalls (fault injection is
/// exercised through [`run_phase_faulty`] instead).
pub fn run_phase<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    mk: impl FnMut(u16) -> A,
    collect: impl FnMut(u16, &A),
) -> RunReport {
    let report = run_phase_faulty(nodes, net, cfg, mk, collect);
    assert!(
        report.completed,
        "phase stalled: {} packets dropped",
        report.stats.dropped_packets
    );
    report
}

/// Like [`run_phase`] but also records a per-node execution timeline
/// (exportable via [`Trace::to_chrome_json`]). `capacity` bounds the span
/// count.
pub fn run_phase_traced<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    mut mk: impl FnMut(u16) -> A,
    mut collect: impl FnMut(u16, &A),
    capacity: usize,
) -> (RunReport, Trace) {
    assert!(nodes >= 1);
    match cfg.variant {
        Variant::Dpa | Variant::Sequential => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| DpaProc::new(mk(i), nodes as usize, cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.enable_tracing(capacity);
            let report = m.run();
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            (report, m.take_trace().expect("tracing enabled"))
        }
        Variant::Caching | Variant::Blocking => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| CachingProc::new(mk(i), cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.enable_tracing(capacity);
            let report = m.run();
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            (report, m.take_trace().expect("tracing enabled"))
        }
    }
}

/// Knobs for a deterministic-simulation-testing run.
#[derive(Clone, Debug, Default)]
pub struct DstOptions {
    /// When `Some`, perturb event ordering with this seed: equal-timestamp
    /// events are permuted and (if `net.jitter_ns > 0`) remote deliveries
    /// get seeded extra delay. `None` runs the canonical schedule.
    pub schedule_seed: Option<u64>,
    /// Fault plan applied to every send (see [`sim_net::fault`]).
    pub faults: FaultPlan,
}

/// Like [`run_phase_faulty`] but under DST control: applies `opts`' fault
/// plan and schedule perturbation, and returns per-node runtime-state
/// snapshots for the invariant checker alongside the report. Never panics
/// on a stall — the report's `stalls` carry the diagnosis instead.
pub fn run_phase_dst<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    opts: &DstOptions,
    mut mk: impl FnMut(u16) -> A,
    mut collect: impl FnMut(u16, &A),
) -> (RunReport, Vec<NodeSnapshot>) {
    assert!(nodes >= 1);
    if matches!(cfg.variant, Variant::Sequential) {
        assert_eq!(nodes, 1, "the sequential reference runs on one node");
    }
    match cfg.variant {
        Variant::Dpa | Variant::Sequential => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| DpaProc::new(mk(i), nodes as usize, cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.set_faults(opts.faults.clone());
            if let Some(seed) = opts.schedule_seed {
                m.perturb_schedule(seed);
            }
            let report = m.run();
            let mut snaps = Vec::with_capacity(nodes as usize);
            for i in 0..nodes {
                let p = m.proc(NodeId(i));
                snaps.push(p.snapshot(i));
                collect(i, p.app());
            }
            (report, snaps)
        }
        Variant::Caching | Variant::Blocking => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| CachingProc::new(mk(i), cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.set_faults(opts.faults.clone());
            if let Some(seed) = opts.schedule_seed {
                m.perturb_schedule(seed);
            }
            let report = m.run();
            let mut snaps = Vec::with_capacity(nodes as usize);
            for i in 0..nodes {
                let p = m.proc(NodeId(i));
                snaps.push(p.snapshot(i));
                collect(i, p.app());
            }
            (report, snaps)
        }
    }
}

/// Like [`run_phase`] but tolerates an incomplete run (for fault-injection
/// tests); check [`RunReport::completed`].
pub fn run_phase_faulty<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    mut mk: impl FnMut(u16) -> A,
    mut collect: impl FnMut(u16, &A),
) -> RunReport {
    assert!(nodes >= 1);
    if matches!(cfg.variant, Variant::Sequential) {
        assert_eq!(nodes, 1, "the sequential reference runs on one node");
    }
    match cfg.variant {
        Variant::Dpa | Variant::Sequential => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| DpaProc::new(mk(i), nodes as usize, cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            let report = m.run();
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            report
        }
        Variant::Caching | Variant::Blocking => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| CachingProc::new(mk(i), cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            let report = m.run();
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            report
        }
    }
}
