//! Phase orchestration: build a machine for a configuration, run it, and
//! hand back both the timing report and the per-node application state.

use crate::config::{DpaConfig, Variant};
use crate::fxmap::{FxHashMap, FxHashSet};
use crate::invariant::NodeSnapshot;
use crate::mapping::PointerMap;
use crate::pending::PendingRequests;
use crate::proc_caching::CachingProc;
use crate::proc_dpa::DpaProc;
use crate::stripctl::StripController;
use crate::work::{PtrApp, Tagged};
use global_heap::{GPtr, MigrationTable, ReplicaDirectory};
use sim_net::{FaultPlan, Machine, NetConfig, NodeId, QueueKind, RunReport, Trace};

/// Run one phase of `app` instances (one per node) under `cfg` on a
/// `nodes`-node machine with network `net`.
///
/// `mk` builds the per-node application; `collect` is called once per node
/// after the run with the node id and its final application state (e.g. to
/// gather computed forces). Panics if the run stalls (fault injection is
/// exercised through [`run_phase_faulty`] instead).
pub fn run_phase<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    mk: impl FnMut(u16) -> A,
    collect: impl FnMut(u16, &A),
) -> RunReport {
    let report = run_phase_faulty(nodes, net, cfg, mk, collect);
    assert!(
        report.completed,
        "phase stalled: {} packets dropped",
        report.stats.dropped_packets
    );
    report
}

/// Like [`run_phase`] but also records a per-node execution timeline
/// (exportable via [`Trace::to_chrome_json`]). `capacity` bounds the span
/// count.
pub fn run_phase_traced<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    mut mk: impl FnMut(u16) -> A,
    mut collect: impl FnMut(u16, &A),
    capacity: usize,
) -> (RunReport, Trace) {
    assert!(nodes >= 1);
    match cfg.variant {
        Variant::Dpa | Variant::Sequential => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| DpaProc::new(mk(i), nodes as usize, cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.enable_tracing(capacity);
            let report = m.run();
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            (report, m.take_trace().expect("tracing enabled"))
        }
        Variant::Caching | Variant::Blocking => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| CachingProc::new(mk(i), cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.enable_tracing(capacity);
            let report = m.run();
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            (report, m.take_trace().expect("tracing enabled"))
        }
    }
}

/// Knobs for a deterministic-simulation-testing run.
#[derive(Clone, Debug)]
pub struct DstOptions {
    /// When `Some`, perturb event ordering with this seed: equal-timestamp
    /// events are permuted and (if `net.jitter_ns > 0`) remote deliveries
    /// get seeded extra delay. `None` runs the canonical schedule.
    pub schedule_seed: Option<u64>,
    /// Fault plan applied to every send (see [`sim_net::fault`]).
    pub faults: FaultPlan,
    /// Simulator worker threads (`Machine::run_threads`). `> 1` selects the
    /// conservative-window parallel engine, which is bit-identical to the
    /// sequential one; defaults to the `DPA_SIM_THREADS` environment
    /// variable (1 when unset), so an entire sweep can be switched to the
    /// parallel engine from the outside.
    pub threads: usize,
    /// Event-queue implementation ([`Machine::set_queue_kind`]): the
    /// timing wheel (default) or the shadow binary heap it is
    /// differentially tested against. Defaults to the `DPA_SIM_QUEUE`
    /// environment variable, so a whole sweep can be flipped to the
    /// shadow heap from the outside.
    pub queue: QueueKind,
    /// Hard cap on events processed per machine run ([`Machine::max_events`];
    /// `u64::MAX` = unlimited, the default). When the cap is hit the run
    /// stops with a structured `budget_exhausted` stall instead of spinning
    /// — the run-service shards use this to reap runaway jobs.
    pub max_events: u64,
    /// Wall-clock deadline for multi-phase runs (`None` = unlimited, the
    /// default). Checked at every phase *boundary*: once the deadline has
    /// passed, the next phase runs with a zero event budget, producing the
    /// same structured `budget_exhausted` stall as `max_events` — real
    /// snapshots, honest partial reports — so a run-service shard can reap
    /// and bill a job that outlived its tenant's wall budget mid-run.
    /// Simulated time stays deterministic; only *whether the run was cut
    /// short* depends on the host clock, which is the point.
    pub wall_deadline: Option<std::time::Instant>,
}

impl Default for DstOptions {
    fn default() -> Self {
        DstOptions {
            schedule_seed: None,
            faults: FaultPlan::default(),
            threads: sim_net::env_threads(),
            queue: sim_net::env_queue(),
            max_events: u64::MAX,
            wall_deadline: None,
        }
    }
}

/// The per-phase event budget under `opts`: the configured `max_events`,
/// or zero once a multi-phase run's wall deadline has passed (never
/// applied to phase 0 — admission control owns the "don't even start"
/// decision; this owns "stop at the next boundary").
fn phase_event_budget(opts: &DstOptions, phase: usize) -> u64 {
    if phase > 0
        && opts
            .wall_deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    {
        0
    } else {
        opts.max_events
    }
}

/// Like [`run_phase_faulty`] but under DST control: applies `opts`' fault
/// plan and schedule perturbation, and returns per-node runtime-state
/// snapshots for the invariant checker alongside the report. Never panics
/// on a stall — the report's `stalls` carry the diagnosis instead.
pub fn run_phase_dst<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    opts: &DstOptions,
    mut mk: impl FnMut(u16) -> A,
    mut collect: impl FnMut(u16, &A),
) -> (RunReport, Vec<NodeSnapshot>) {
    assert!(nodes >= 1);
    if matches!(cfg.variant, Variant::Sequential) {
        assert_eq!(nodes, 1, "the sequential reference runs on one node");
    }
    match cfg.variant {
        Variant::Dpa | Variant::Sequential => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| DpaProc::new(mk(i), nodes as usize, cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.set_queue_kind(opts.queue);
            m.set_faults(opts.faults.clone());
            if let Some(seed) = opts.schedule_seed {
                m.perturb_schedule(seed);
            }
            m.max_events = opts.max_events;
            let report = m.run_threads(opts.threads);
            let mut snaps = Vec::with_capacity(nodes as usize);
            for i in 0..nodes {
                let p = m.proc(NodeId(i));
                snaps.push(p.snapshot(i));
                collect(i, p.app());
            }
            (report, snaps)
        }
        Variant::Caching | Variant::Blocking => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| CachingProc::new(mk(i), cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.set_queue_kind(opts.queue);
            m.set_faults(opts.faults.clone());
            if let Some(seed) = opts.schedule_seed {
                m.perturb_schedule(seed);
            }
            m.max_events = opts.max_events;
            let report = m.run_threads(opts.threads);
            let mut snaps = Vec::with_capacity(nodes as usize);
            for i in 0..nodes {
                let p = m.proc(NodeId(i));
                snaps.push(p.snapshot(i));
                collect(i, p.app());
            }
            (report, snaps)
        }
    }
}

/// Collapse dangling forwarding stubs at a phase barrier: for every
/// departed entry whose target node never adopted the object (its
/// `Migrate` was dropped, or a forward chain was still parked when the
/// phase ended), complete the adoption offline. `size_of` supplies the
/// payload size for the adoptee's table.
///
/// This is what makes the boundary re-homing *idempotent*: without it a
/// transient drop leaves a stub pointing at a node with no payload, and
/// every later phase's requests forward there and park forever — a
/// permanent stall born from a single lost packet. Deterministic: owners
/// in node order, departed entries sorted by pointer bits.
///
/// Returns the healed pointers (empty on a clean hand-off).
pub fn heal_departed_orphans(
    tables: &mut [MigrationTable],
    mut size_of: impl FnMut(GPtr) -> u32,
) -> Vec<GPtr> {
    let mut healed = Vec::new();
    for owner in 0..tables.len() {
        for (bits, to) in tables[owner].departed_entries() {
            let ptr = GPtr::from_bits(bits);
            let to = to as usize;
            debug_assert!(to < tables.len(), "stub targets an unknown node");
            if to < tables.len() && !tables[to].is_adopted(ptr) {
                let size = size_of(ptr);
                if tables[to].adopt(ptr, size) {
                    healed.push(ptr);
                }
            }
        }
    }
    healed
}

/// Multi-phase DPA run with locality-driven object migration carried
/// across phase boundaries.
///
/// Each phase runs under DST control like [`run_phase_dst`]; between
/// phases the per-node [`MigrationTable`]s are handed to the next phase's
/// procs, and a *boundary pass* commits the accumulated affinity signal:
/// every owner picks its dominant-consumer moves (same `threshold` /
/// `budget` knobs as the in-phase epochs) and the objects are re-homed
/// offline — no messages, the hand-off models shipping them alongside the
/// phase barrier. The next phase's requesters then find the objects local
/// to their new homes, which is where migration's message savings come
/// from: within a single phase the arrival set already deduplicates
/// fetches, so only cross-phase re-homing can remove request traffic.
///
/// With migration disabled in `cfg` this degenerates to running `phases`
/// independent phases, so an ON/OFF ablation differs only in the knobs.
///
/// With an adaptive strip ([`crate::stripctl`]) the per-node controllers
/// are likewise carried across the boundary: each phase opens at the strip
/// the previous one converged to.
///
/// `mk(phase, node)` builds each phase's per-node app; `collect` sees
/// every node after every phase. Returns the per-phase reports, the
/// per-phase invariant snapshots, and the final migration tables (empty
/// when migration is off).
pub fn run_phase_migrating<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    opts: &DstOptions,
    phases: usize,
    mut mk: impl FnMut(usize, u16) -> A,
    mut collect: impl FnMut(usize, u16, &A),
) -> (Vec<RunReport>, Vec<Vec<NodeSnapshot>>, Vec<MigrationTable>) {
    assert!(nodes >= 1 && phases >= 1);
    assert!(
        matches!(cfg.variant, Variant::Dpa),
        "migration drives the DPA variant only, got {:?}",
        cfg.variant
    );
    assert!(
        !cfg.replication,
        "replication rides the differential driver (run_phase_differential)"
    );
    let migrate = cfg.migration_enabled();
    let adaptive = cfg.adaptive_strip();
    let mut tables: Option<Vec<MigrationTable>> = None;
    // Adaptive k-bound: each node's controller survives the barrier, so a
    // phase opens at the strip its predecessor settled on instead of
    // re-learning from the initial guess (strips/phases are the paper's
    // natural retune boundaries).
    let mut strip_ctls: Option<Vec<StripController>> = None;
    let mut reports = Vec::with_capacity(phases);
    let mut all_snaps = Vec::with_capacity(phases);
    // One machine serves every phase: after the first, `Machine::reset`
    // hands it the next phase's procs while retaining the timing wheel's
    // warmed bucket pool — bit-identical to a fresh machine (the reset
    // regression tests and every equivalence sweep pin this down), which
    // is also what lets a run-service shard reuse its machine between jobs.
    let mut machine: Option<Machine<DpaProc<A>>> = None;
    for phase in 0..phases {
        let mut procs: Vec<_> = (0..nodes)
            .map(|i| DpaProc::new(mk(phase, i), nodes as usize, cfg.clone()))
            .collect();
        if let Some(tables) = tables.take() {
            for (p, t) in procs.iter_mut().zip(tables) {
                p.set_migration(t);
            }
        }
        if let Some(ctls) = strip_ctls.take() {
            for (p, c) in procs.iter_mut().zip(ctls) {
                p.set_strip_controller(c);
            }
        }
        let mut m = match machine.take() {
            None => Machine::new(procs, net.clone()),
            Some(mut m) => {
                m.reset(procs);
                m
            }
        };
        m.set_queue_kind(opts.queue);
        m.set_faults(opts.faults.clone());
        if let Some(seed) = opts.schedule_seed {
            // Vary the perturbation per phase, deterministically.
            m.perturb_schedule(seed.wrapping_add(phase as u64));
        }
        m.max_events = phase_event_budget(opts, phase);
        reports.push(m.run_threads(opts.threads));
        let mut snaps = Vec::with_capacity(nodes as usize);
        for i in 0..nodes {
            let p = m.proc(NodeId(i));
            snaps.push(p.snapshot(i));
            collect(phase, i, p.app());
        }
        all_snaps.push(snaps);
        if adaptive && phase + 1 < phases {
            strip_ctls = Some(
                (0..nodes)
                    .map(|i| {
                        m.proc_mut(NodeId(i))
                            .take_strip_controller()
                            .expect("adaptive strip enabled")
                    })
                    .collect(),
            );
        }
        if migrate {
            let mut taken: Vec<MigrationTable> = (0..nodes)
                .map(|i| {
                    m.proc_mut(NodeId(i))
                        .take_migration()
                        .expect("migration enabled")
                })
                .collect();
            if phase + 1 < phases {
                // Heal first: a Migrate dropped mid-phase (or a forward
                // chain still parked at phase end) leaves a stub whose
                // target never adopted. Completing the adoption at the
                // barrier keeps re-homing idempotent — otherwise the next
                // phase's forwards park on the missing adoptee forever.
                heal_departed_orphans(&mut taken, |ptr| {
                    m.proc(NodeId(ptr.node())).app().object_size(ptr)
                });
                // Boundary pass: commit the phase's accumulated affinity.
                // Owners in node order, picks already deterministically
                // sorted — replays are bit-identical.
                for owner in 0..nodes as usize {
                    let picks = taken[owner]
                        .pick_migrations(cfg.migration_threshold, cfg.migration_budget);
                    for mv in picks {
                        let size = m.proc(NodeId(owner as u16)).app().object_size(mv.ptr);
                        if taken[owner].depart(mv.ptr, mv.to) {
                            taken[mv.to as usize].adopt(mv.ptr, size);
                        }
                    }
                }
            }
            tables = Some(taken);
        }
        machine = Some(m);
    }
    (reports, all_snaps, tables.unwrap_or_default())
}

/// One node's carried M/D pair (the retained mapping and pending table).
type MdTables<A> = (PointerMap<Tagged<<A as PtrApp>::Work>>, PendingRequests);

/// Multi-timestep DPA run with **differential re-alignment**: instead of
/// rebuilding the runtime tables from scratch at every phase barrier, the
/// per-node state is diffed and *patched*:
///
/// * **Renamed storage carries.** Each node's arrival set is drained at
///   the barrier and re-seeded into the next phase's proc, every entry
///   stamped with the generation it was fetched at. Unchanged objects are
///   never refetched — the steady-state saving this mode exists for.
/// * **Boundary deltas.** The driver diffs each carried entry's stamp
///   against its home's current generation; at `on_start` every owner
///   announces to each consumer carrying its objects which of them changed
///   ([`crate::DpaMsg::PhaseDelta`] — an empty list is the all-clear). A
///   consumer gates its first strip on hearing from every carried home,
///   invalidates the listed copies, and refetches them on next use.
/// * **M/D patching.** The `PointerMap` and `PendingRequests` interners
///   (and their warmed waiter-list capacities) carry across the barrier
///   via [`PointerMap::reset_for_phase`]: steady-state phases re-align a
///   mostly-unchanged pointer set without touching the allocator.
/// * **Migration and strips compose.** The boundary runs the same
///   re-homing pass as [`run_phase_migrating`] (healed against dangling
///   stubs first); carried entries whose home moved at this boundary — or
///   whose home is the consumer itself — are pruned from the carry, so a
///   re-homed object is always refetched from its new home. Adaptive
///   strip controllers carry exactly as in the migrating driver.
/// * **Read-mostly replication** (`cfg.replication`). The boundary also
///   runs the promotion policy over each owner's accumulated affinity:
///   a pointer read by at least `replication_min_fanout` consumers, at
///   least `replication_threshold` times in total, with *no* dominant
///   consumer (top ≤ half the total — the shape where migration's
///   re-homing merely moves the hot spot) is promoted into the owner's
///   [`ReplicaDirectory`], capped at `replication_budget` pointers
///   replicated per owner at a time. Replicated pointers are pinned against
///   migration (promotion runs *before* the re-homing pass); write-heavy
///   windows demote on the way out of each phase, un-pinning the pointer
///   again. Directories hand across the barrier like every other table,
///   their generations refreshed against the next phase's objects so
///   only moved generations re-broadcast.
///
/// Correctness bar: interaction checksums are bit-identical to a
/// from-scratch [`run_phase_migrating`] run of the same workload — stale
/// carries are observable because value-sensitive apps fold the stamp into
/// their digests (see the `StaleCacheEntry` oracle).
///
/// `cfg.differential` must be set (see
/// [`DpaConfig::dpa_differential`]); signature and return match
/// [`run_phase_migrating`].
pub fn run_phase_differential<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    opts: &DstOptions,
    phases: usize,
    mut mk: impl FnMut(usize, u16) -> A,
    mut collect: impl FnMut(usize, u16, &A),
) -> (Vec<RunReport>, Vec<Vec<NodeSnapshot>>, Vec<MigrationTable>) {
    assert!(nodes >= 1 && phases >= 1);
    assert!(
        matches!(cfg.variant, Variant::Dpa),
        "differential drives the DPA variant only, got {:?}",
        cfg.variant
    );
    assert!(
        cfg.differential,
        "run_phase_differential needs cfg.differential (see DpaConfig::dpa_differential)"
    );
    let migrate = cfg.migration_enabled();
    let adaptive = cfg.adaptive_strip();
    let replicate = cfg.replication;
    let mut tables: Option<Vec<MigrationTable>> = None;
    let mut strip_ctls: Option<Vec<StripController>> = None;
    // Per-owner replica directories, carried across the barrier like the
    // migration tables (empty directories in phase 0).
    let mut repl_dirs: Option<Vec<ReplicaDirectory>> = None;
    // Cross-barrier carry: per-node arrival entries `(ptr, size, gen)`,
    // the M/D tables, and the pointers whose home moved at the last
    // boundary (pruned from the carry so they refetch from the new home).
    let mut carries: Option<Vec<Vec<(GPtr, u32, u32)>>> = None;
    let mut md_tables: Option<Vec<MdTables<A>>> = None;
    let mut moved: FxHashSet<GPtr> = FxHashSet::default();
    let mut reports = Vec::with_capacity(phases);
    let mut all_snaps = Vec::with_capacity(phases);
    // Same machine-reuse discipline as `run_phase_migrating`.
    let mut machine: Option<Machine<DpaProc<A>>> = None;
    for phase in 0..phases {
        let mut procs: Vec<_> = (0..nodes)
            .map(|i| DpaProc::new(mk(phase, i), nodes as usize, cfg.clone()))
            .collect();
        if let Some(tables) = tables.take() {
            for (p, t) in procs.iter_mut().zip(tables) {
                p.set_migration(t);
            }
        }
        if let Some(ctls) = strip_ctls.take() {
            for (p, c) in procs.iter_mut().zip(ctls) {
                p.set_strip_controller(c);
            }
        }
        if let Some(mds) = md_tables.take() {
            for (p, (map, pend)) in procs.iter_mut().zip(mds) {
                p.set_tables(map, pend);
            }
        }
        if replicate {
            let dirs = repl_dirs
                .take()
                .unwrap_or_else(|| (0..nodes).map(|_| ReplicaDirectory::new()).collect());
            for (i, mut dir) in dirs.into_iter().enumerate() {
                // Refresh every entry to this phase's generation before the
                // machine starts: a moved generation flags a re-broadcast,
                // an unchanged one stays silent (the consumers carry it and
                // the differential all-clear validates it).
                for ptr in dir.ptrs() {
                    dir.set_gen(ptr, procs[i].app().object_generation(ptr));
                }
                procs[i].set_replication(dir);
            }
        }
        if let Some(carries) = carries.take() {
            // Current home of a carried pointer: the adopting node if any
            // table claims it, else the birth home in the pointer bits.
            let mut adopted_at: FxHashMap<GPtr, u16> = FxHashMap::default();
            for (i, p) in procs.iter().enumerate() {
                if let Some(t) = p.migration() {
                    for (bits, _) in t.adopted_entries() {
                        adopted_at.insert(GPtr::from_bits(bits), i as u16);
                    }
                }
            }
            // Per owner: the (consumer, changed entries) deltas to
            // announce. Every surviving (consumer, home) pair gets an
            // entry — an empty list is the owner's all-clear, and the
            // consumer gates on hearing it.
            let mut deltas: FxHashMap<u16, FxHashMap<u16, Vec<GPtr>>> = FxHashMap::default();
            for (i, entries) in carries.into_iter().enumerate() {
                let me = i as u16;
                let mut kept: Vec<(GPtr, u32, u32)> = Vec::with_capacity(entries.len());
                let mut awaiting: Vec<u16> = Vec::new();
                for (ptr, size, gen) in entries {
                    let home = adopted_at.get(&ptr).copied().unwrap_or_else(|| ptr.node());
                    if home == me || moved.contains(&ptr) {
                        // Served locally now, or re-homed at this boundary:
                        // drop the carry so the next use refetches.
                        continue;
                    }
                    let cur = procs[home as usize].app().object_generation(ptr);
                    let dst = deltas.entry(home).or_default().entry(me).or_default();
                    if cur != gen {
                        // Entries arrive sorted from take_arrival_carry, so
                        // the delta list stays sorted by pointer bits.
                        dst.push(ptr);
                    }
                    if !awaiting.contains(&home) {
                        awaiting.push(home);
                    }
                    kept.push((ptr, size, gen));
                }
                procs[i].set_phase_carry(kept, awaiting);
            }
            for (owner, per_consumer) in deltas {
                let mut out: Vec<(u16, Vec<GPtr>)> = per_consumer.into_iter().collect();
                // Sorted fan-out so the owner's send order (and seq
                // assignment) is deterministic.
                out.sort_unstable_by_key(|&(consumer, _)| consumer);
                procs[owner as usize].set_phase_deltas(out);
            }
        }
        moved.clear();
        let mut m = match machine.take() {
            None => Machine::new(procs, net.clone()),
            Some(mut m) => {
                m.reset(procs);
                m
            }
        };
        m.set_queue_kind(opts.queue);
        m.set_faults(opts.faults.clone());
        if let Some(seed) = opts.schedule_seed {
            m.perturb_schedule(seed.wrapping_add(phase as u64));
        }
        m.max_events = phase_event_budget(opts, phase);
        reports.push(m.run_threads(opts.threads));
        let mut snaps = Vec::with_capacity(nodes as usize);
        for i in 0..nodes {
            let p = m.proc(NodeId(i));
            snaps.push(p.snapshot(i));
            collect(phase, i, p.app());
        }
        all_snaps.push(snaps);
        if adaptive && phase + 1 < phases {
            strip_ctls = Some(
                (0..nodes)
                    .map(|i| {
                        m.proc_mut(NodeId(i))
                            .take_strip_controller()
                            .expect("adaptive strip enabled")
                    })
                    .collect(),
            );
        }
        if migrate {
            let mut taken: Vec<MigrationTable> = (0..nodes)
                .map(|i| {
                    m.proc_mut(NodeId(i))
                        .take_migration()
                        .expect("migration enabled")
                })
                .collect();
            if phase + 1 < phases {
                // Same boundary pass as run_phase_migrating: heal dangling
                // stubs, then commit the phase's affinity. Every pointer
                // that changes home here is recorded so its carried copies
                // are pruned above.
                let healed = heal_departed_orphans(&mut taken, |ptr| {
                    m.proc(NodeId(ptr.node())).app().object_size(ptr)
                });
                moved.extend(healed);
                if replicate {
                    // Promotion policy, strictly before the re-homing
                    // pass: a freshly promoted pointer must be pinned so
                    // this boundary's migration picks cannot re-home it
                    // out from under its consumer set. Deterministic:
                    // owners in node order, candidates sorted by (reads
                    // desc, fan-out desc, pointer bits).
                    let mut dirs: Vec<ReplicaDirectory> = (0..nodes)
                        .map(|i| {
                            m.proc_mut(NodeId(i))
                                .take_replication()
                                .expect("replication enabled")
                        })
                        .collect();
                    for owner in 0..nodes as usize {
                        let mut eligible: Vec<(GPtr, u64, usize, Vec<u16>)> = Vec::new();
                        for (ptr, row) in taken[owner].affinity_summary() {
                            if dirs[owner].is_replicated(ptr) {
                                continue;
                            }
                            let fanout = row.len();
                            let total: u64 = row.iter().map(|&(_, n)| n).sum();
                            let top: u64 = row.iter().map(|&(_, n)| n).max().unwrap_or(0);
                            // Wide fan-out, enough reads, and no dominant
                            // consumer — the shape migration loses on
                            // (re-homing would just move the hot spot).
                            if fanout >= cfg.replication_min_fanout
                                && total >= cfg.replication_threshold
                                && top * 2 <= total
                            {
                                let consumers: Vec<u16> =
                                    row.iter().map(|&(c, _)| c).collect();
                                eligible.push((ptr, total, fanout, consumers));
                            }
                        }
                        eligible.sort_unstable_by(|a, b| {
                            b.1.cmp(&a.1)
                                .then(b.2.cmp(&a.2))
                                .then(a.0.bits().cmp(&b.0.bits()))
                        });
                        let room = cfg
                            .replication_budget
                            .saturating_sub(dirs[owner].len());
                        eligible.truncate(room);
                        for (ptr, _, _, consumers) in eligible {
                            let gen =
                                m.proc(NodeId(owner as u16)).app().object_generation(ptr);
                            dirs[owner].promote(ptr, gen, consumers);
                        }
                        taken[owner].set_pins(&dirs[owner].ptrs());
                    }
                    repl_dirs = Some(dirs);
                }
                for owner in 0..nodes as usize {
                    let picks = taken[owner]
                        .pick_migrations(cfg.migration_threshold, cfg.migration_budget);
                    for mv in picks {
                        let size = m.proc(NodeId(owner as u16)).app().object_size(mv.ptr);
                        if taken[owner].depart(mv.ptr, mv.to) {
                            taken[mv.to as usize].adopt(mv.ptr, size);
                            moved.insert(mv.ptr);
                        }
                    }
                }
            }
            tables = Some(taken);
        }
        if phase + 1 < phases {
            carries = Some(
                (0..nodes)
                    .map(|i| m.proc_mut(NodeId(i)).take_arrival_carry())
                    .collect(),
            );
            md_tables = Some(
                (0..nodes)
                    .map(|i| m.proc_mut(NodeId(i)).take_tables())
                    .collect(),
            );
        }
        machine = Some(m);
    }
    (reports, all_snaps, tables.unwrap_or_default())
}

/// Like [`run_phase`] but tolerates an incomplete run (for fault-injection
/// tests); check [`RunReport::completed`].
pub fn run_phase_faulty<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    mut mk: impl FnMut(u16) -> A,
    mut collect: impl FnMut(u16, &A),
) -> RunReport {
    assert!(nodes >= 1);
    if matches!(cfg.variant, Variant::Sequential) {
        assert_eq!(nodes, 1, "the sequential reference runs on one node");
    }
    match cfg.variant {
        Variant::Dpa | Variant::Sequential => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| DpaProc::new(mk(i), nodes as usize, cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            let report = m.run_threads(sim_net::env_threads());
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            report
        }
        Variant::Caching | Variant::Blocking => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| CachingProc::new(mk(i), cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            let report = m.run_threads(sim_net::env_threads());
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            report
        }
    }
}
