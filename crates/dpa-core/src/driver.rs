//! Phase orchestration: build a machine for a configuration, run it, and
//! hand back both the timing report and the per-node application state.

use crate::config::{DpaConfig, Variant};
use crate::invariant::NodeSnapshot;
use crate::proc_caching::CachingProc;
use crate::proc_dpa::DpaProc;
use crate::stripctl::StripController;
use crate::work::PtrApp;
use global_heap::MigrationTable;
use sim_net::{FaultPlan, Machine, NetConfig, NodeId, QueueKind, RunReport, Trace};

/// Run one phase of `app` instances (one per node) under `cfg` on a
/// `nodes`-node machine with network `net`.
///
/// `mk` builds the per-node application; `collect` is called once per node
/// after the run with the node id and its final application state (e.g. to
/// gather computed forces). Panics if the run stalls (fault injection is
/// exercised through [`run_phase_faulty`] instead).
pub fn run_phase<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    mk: impl FnMut(u16) -> A,
    collect: impl FnMut(u16, &A),
) -> RunReport {
    let report = run_phase_faulty(nodes, net, cfg, mk, collect);
    assert!(
        report.completed,
        "phase stalled: {} packets dropped",
        report.stats.dropped_packets
    );
    report
}

/// Like [`run_phase`] but also records a per-node execution timeline
/// (exportable via [`Trace::to_chrome_json`]). `capacity` bounds the span
/// count.
pub fn run_phase_traced<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    mut mk: impl FnMut(u16) -> A,
    mut collect: impl FnMut(u16, &A),
    capacity: usize,
) -> (RunReport, Trace) {
    assert!(nodes >= 1);
    match cfg.variant {
        Variant::Dpa | Variant::Sequential => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| DpaProc::new(mk(i), nodes as usize, cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.enable_tracing(capacity);
            let report = m.run();
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            (report, m.take_trace().expect("tracing enabled"))
        }
        Variant::Caching | Variant::Blocking => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| CachingProc::new(mk(i), cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.enable_tracing(capacity);
            let report = m.run();
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            (report, m.take_trace().expect("tracing enabled"))
        }
    }
}

/// Knobs for a deterministic-simulation-testing run.
#[derive(Clone, Debug)]
pub struct DstOptions {
    /// When `Some`, perturb event ordering with this seed: equal-timestamp
    /// events are permuted and (if `net.jitter_ns > 0`) remote deliveries
    /// get seeded extra delay. `None` runs the canonical schedule.
    pub schedule_seed: Option<u64>,
    /// Fault plan applied to every send (see [`sim_net::fault`]).
    pub faults: FaultPlan,
    /// Simulator worker threads (`Machine::run_threads`). `> 1` selects the
    /// conservative-window parallel engine, which is bit-identical to the
    /// sequential one; defaults to the `DPA_SIM_THREADS` environment
    /// variable (1 when unset), so an entire sweep can be switched to the
    /// parallel engine from the outside.
    pub threads: usize,
    /// Event-queue implementation ([`Machine::set_queue_kind`]): the
    /// timing wheel (default) or the shadow binary heap it is
    /// differentially tested against. Defaults to the `DPA_SIM_QUEUE`
    /// environment variable, so a whole sweep can be flipped to the
    /// shadow heap from the outside.
    pub queue: QueueKind,
}

impl Default for DstOptions {
    fn default() -> Self {
        DstOptions {
            schedule_seed: None,
            faults: FaultPlan::default(),
            threads: sim_net::env_threads(),
            queue: sim_net::env_queue(),
        }
    }
}

/// Like [`run_phase_faulty`] but under DST control: applies `opts`' fault
/// plan and schedule perturbation, and returns per-node runtime-state
/// snapshots for the invariant checker alongside the report. Never panics
/// on a stall — the report's `stalls` carry the diagnosis instead.
pub fn run_phase_dst<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    opts: &DstOptions,
    mut mk: impl FnMut(u16) -> A,
    mut collect: impl FnMut(u16, &A),
) -> (RunReport, Vec<NodeSnapshot>) {
    assert!(nodes >= 1);
    if matches!(cfg.variant, Variant::Sequential) {
        assert_eq!(nodes, 1, "the sequential reference runs on one node");
    }
    match cfg.variant {
        Variant::Dpa | Variant::Sequential => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| DpaProc::new(mk(i), nodes as usize, cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.set_queue_kind(opts.queue);
            m.set_faults(opts.faults.clone());
            if let Some(seed) = opts.schedule_seed {
                m.perturb_schedule(seed);
            }
            let report = m.run_threads(opts.threads);
            let mut snaps = Vec::with_capacity(nodes as usize);
            for i in 0..nodes {
                let p = m.proc(NodeId(i));
                snaps.push(p.snapshot(i));
                collect(i, p.app());
            }
            (report, snaps)
        }
        Variant::Caching | Variant::Blocking => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| CachingProc::new(mk(i), cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            m.set_queue_kind(opts.queue);
            m.set_faults(opts.faults.clone());
            if let Some(seed) = opts.schedule_seed {
                m.perturb_schedule(seed);
            }
            let report = m.run_threads(opts.threads);
            let mut snaps = Vec::with_capacity(nodes as usize);
            for i in 0..nodes {
                let p = m.proc(NodeId(i));
                snaps.push(p.snapshot(i));
                collect(i, p.app());
            }
            (report, snaps)
        }
    }
}

/// Multi-phase DPA run with locality-driven object migration carried
/// across phase boundaries.
///
/// Each phase runs under DST control like [`run_phase_dst`]; between
/// phases the per-node [`MigrationTable`]s are handed to the next phase's
/// procs, and a *boundary pass* commits the accumulated affinity signal:
/// every owner picks its dominant-consumer moves (same `threshold` /
/// `budget` knobs as the in-phase epochs) and the objects are re-homed
/// offline — no messages, the hand-off models shipping them alongside the
/// phase barrier. The next phase's requesters then find the objects local
/// to their new homes, which is where migration's message savings come
/// from: within a single phase the arrival set already deduplicates
/// fetches, so only cross-phase re-homing can remove request traffic.
///
/// With migration disabled in `cfg` this degenerates to running `phases`
/// independent phases, so an ON/OFF ablation differs only in the knobs.
///
/// With an adaptive strip ([`crate::stripctl`]) the per-node controllers
/// are likewise carried across the boundary: each phase opens at the strip
/// the previous one converged to.
///
/// `mk(phase, node)` builds each phase's per-node app; `collect` sees
/// every node after every phase. Returns the per-phase reports, the
/// per-phase invariant snapshots, and the final migration tables (empty
/// when migration is off).
pub fn run_phase_migrating<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    opts: &DstOptions,
    phases: usize,
    mut mk: impl FnMut(usize, u16) -> A,
    mut collect: impl FnMut(usize, u16, &A),
) -> (Vec<RunReport>, Vec<Vec<NodeSnapshot>>, Vec<MigrationTable>) {
    assert!(nodes >= 1 && phases >= 1);
    assert!(
        matches!(cfg.variant, Variant::Dpa),
        "migration drives the DPA variant only, got {:?}",
        cfg.variant
    );
    let migrate = cfg.migration_enabled();
    let adaptive = cfg.adaptive_strip();
    let mut tables: Option<Vec<MigrationTable>> = None;
    // Adaptive k-bound: each node's controller survives the barrier, so a
    // phase opens at the strip its predecessor settled on instead of
    // re-learning from the initial guess (strips/phases are the paper's
    // natural retune boundaries).
    let mut strip_ctls: Option<Vec<StripController>> = None;
    let mut reports = Vec::with_capacity(phases);
    let mut all_snaps = Vec::with_capacity(phases);
    for phase in 0..phases {
        let mut procs: Vec<_> = (0..nodes)
            .map(|i| DpaProc::new(mk(phase, i), nodes as usize, cfg.clone()))
            .collect();
        if let Some(tables) = tables.take() {
            for (p, t) in procs.iter_mut().zip(tables) {
                p.set_migration(t);
            }
        }
        if let Some(ctls) = strip_ctls.take() {
            for (p, c) in procs.iter_mut().zip(ctls) {
                p.set_strip_controller(c);
            }
        }
        let mut m = Machine::new(procs, net.clone());
        m.set_queue_kind(opts.queue);
        m.set_faults(opts.faults.clone());
        if let Some(seed) = opts.schedule_seed {
            // Vary the perturbation per phase, deterministically.
            m.perturb_schedule(seed.wrapping_add(phase as u64));
        }
        reports.push(m.run_threads(opts.threads));
        let mut snaps = Vec::with_capacity(nodes as usize);
        for i in 0..nodes {
            let p = m.proc(NodeId(i));
            snaps.push(p.snapshot(i));
            collect(phase, i, p.app());
        }
        all_snaps.push(snaps);
        if adaptive && phase + 1 < phases {
            strip_ctls = Some(
                (0..nodes)
                    .map(|i| {
                        m.proc_mut(NodeId(i))
                            .take_strip_controller()
                            .expect("adaptive strip enabled")
                    })
                    .collect(),
            );
        }
        if migrate {
            let mut taken: Vec<MigrationTable> = (0..nodes)
                .map(|i| {
                    m.proc_mut(NodeId(i))
                        .take_migration()
                        .expect("migration enabled")
                })
                .collect();
            if phase + 1 < phases {
                // Boundary pass: commit the phase's accumulated affinity.
                // Owners in node order, picks already deterministically
                // sorted — replays are bit-identical.
                for owner in 0..nodes as usize {
                    let picks = taken[owner]
                        .pick_migrations(cfg.migration_threshold, cfg.migration_budget);
                    for mv in picks {
                        let size = m.proc(NodeId(owner as u16)).app().object_size(mv.ptr);
                        if taken[owner].depart(mv.ptr, mv.to) {
                            taken[mv.to as usize].adopt(mv.ptr, size);
                        }
                    }
                }
            }
            tables = Some(taken);
        }
    }
    (reports, all_snaps, tables.unwrap_or_default())
}

/// Like [`run_phase`] but tolerates an incomplete run (for fault-injection
/// tests); check [`RunReport::completed`].
pub fn run_phase_faulty<A: PtrApp>(
    nodes: u16,
    net: NetConfig,
    cfg: DpaConfig,
    mut mk: impl FnMut(u16) -> A,
    mut collect: impl FnMut(u16, &A),
) -> RunReport {
    assert!(nodes >= 1);
    if matches!(cfg.variant, Variant::Sequential) {
        assert_eq!(nodes, 1, "the sequential reference runs on one node");
    }
    match cfg.variant {
        Variant::Dpa | Variant::Sequential => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| DpaProc::new(mk(i), nodes as usize, cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            let report = m.run_threads(sim_net::env_threads());
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            report
        }
        Variant::Caching | Variant::Blocking => {
            let procs: Vec<_> = (0..nodes)
                .map(|i| CachingProc::new(mk(i), cfg.clone()))
                .collect();
            let mut m = Machine::new(procs, net);
            let report = m.run_threads(sim_net::env_threads());
            for i in 0..nodes {
                collect(i, m.proc(NodeId(i)).app());
            }
            report
        }
    }
}
