//! Runtime-state invariants checked by the DST harness.
//!
//! The DPA runtime's correctness argument rests on a handful of conservation
//! laws over its two tables — **M** (pointer → aligned threads) and **D**
//! (outstanding requests) — and its coalescing buffers:
//!
//! * at phase end M and D are empty and every buffer is drained;
//! * every entry pushed into a coalescer is either sent or still buffered
//!   (nothing silently vanishes inside the runtime) — separately on the
//!   request path and on the owner-side reply path, whose scheduler has
//!   its own buffers;
//! * every distinct request issued is either installed or still outstanding
//!   (replies are deduplicated, so duplicated delivery cannot over-install);
//! * reduction entries are applied **at most once** machine-wide — exactly
//!   once when the network loses nothing.
//!
//! Each node driver exports a [`NodeSnapshot`] after a run;
//! [`check_completed`] and [`check_conservation`] turn a set of snapshots
//! into a (hopefully empty) list of [`Violation`]s. The laws hold across
//! *every* schedule and fault plan, which is what makes them useful DST
//! oracles: a scheduling bug shows up as a leak long before it corrupts an
//! application result.

use std::fmt;

/// Post-run runtime state of one node, in entry counts.
///
/// Produced by `DpaProc::snapshot` / `CachingProc::snapshot`; consumed by
/// the checkers below. All counters are cumulative over the phase except
/// the `*_buffered`, `pending_*` and `map_*` fields, which are the state
/// left at the instant the run stopped.
#[derive(Clone, Debug, Default)]
pub struct NodeSnapshot {
    /// Which node this snapshot describes.
    pub node: u16,
    /// Keys still present in M (0 after a completed phase).
    pub map_keys: usize,
    /// Threads still aligned under some key in M.
    pub map_threads: u64,
    /// Entries still present in D.
    pub pending_requests: usize,
    /// Up to a few of the stuck pointers, rendered for diagnostics.
    pub pending_sample: Vec<String>,
    /// Replies owed: request entries sent whose reply has not installed.
    pub in_flight: usize,
    /// Distinct requests ever issued (D inserts).
    pub requests_issued: u64,
    /// Remote objects installed by fresh (non-duplicate) replies.
    pub objects_installed: u64,
    /// Request entries pushed into the coalescer.
    pub req_pushed: u64,
    /// Request entries actually sent on the wire.
    pub req_sent: u64,
    /// Request entries still buffered (coalescer plus held batches).
    pub req_buffered: usize,
    /// Reduction entries emitted by the application on this node.
    pub updates_emitted: u64,
    /// Reduction entries applied on this node (local and received).
    pub updates_applied: u64,
    /// Reduction entries sent on the wire.
    pub upd_sent: u64,
    /// Reduction entries still buffered for sending.
    pub upd_buffered: usize,
    /// Owner-side reply entries accepted for sending (immediate service or
    /// pushed into the reply scheduler).
    pub reply_pushed: u64,
    /// Owner-side reply entries sent on the wire.
    pub reply_sent: u64,
    /// Owner-side reply entries still buffered in the reply scheduler.
    pub reply_buffered: usize,
    /// Request messages sent (per-path message accounting).
    pub request_msgs: u64,
    /// Reply messages sent.
    pub reply_msgs: u64,
    /// Update messages sent.
    pub update_msgs: u64,
}

/// One violated invariant, with enough context to act on.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// M still holds aligned threads after the phase ended.
    MapNotEmpty {
        /// Offending node.
        node: u16,
        /// Keys left in M.
        keys: usize,
        /// Threads still aligned.
        threads: u64,
    },
    /// D still holds outstanding requests after the phase ended.
    PendingNotDrained {
        /// Offending node.
        node: u16,
        /// Entries left in D.
        count: usize,
        /// A sample of the stuck pointers.
        sample: Vec<String>,
    },
    /// A coalescing buffer still holds entries after the phase ended.
    BufferNotDrained {
        /// Offending node.
        node: u16,
        /// Request entries left buffered.
        req: usize,
        /// Reduction entries left buffered.
        upd: usize,
        /// Reply entries left buffered in the reply scheduler.
        reply: usize,
    },
    /// Request entries pushed ≠ sent + buffered: the communication
    /// scheduler lost or invented entries.
    RequestLeak {
        /// Offending node.
        node: u16,
        /// Entries pushed into the coalescer.
        pushed: u64,
        /// Entries sent on the wire.
        sent: u64,
        /// Entries still buffered.
        buffered: usize,
    },
    /// Owner-side reply entries accepted ≠ sent + buffered: the reply
    /// scheduler lost or invented entries.
    ReplyPathLeak {
        /// Offending node.
        node: u16,
        /// Reply entries accepted for sending.
        pushed: u64,
        /// Reply entries sent on the wire.
        sent: u64,
        /// Reply entries still buffered.
        buffered: usize,
    },
    /// Requests issued ≠ objects installed + still outstanding: a reply
    /// was double-installed or an install happened unsolicited.
    ReplyLeak {
        /// Offending node.
        node: u16,
        /// Distinct requests issued.
        issued: u64,
        /// Objects installed.
        installed: u64,
        /// Requests still outstanding.
        outstanding: usize,
    },
    /// Machine-wide reduction conservation failed on a lossless run:
    /// entries applied ≠ entries emitted (+ still buffered).
    UpdateLeak {
        /// Entries emitted across all nodes.
        emitted: u64,
        /// Entries applied across all nodes.
        applied: u64,
        /// Entries still buffered across all nodes.
        buffered: u64,
    },
    /// More reduction entries applied than emitted: a duplicated update
    /// was folded in twice. This is a violation on *any* run, lossy or
    /// not — dedup must make application at-most-once.
    UpdateOverApplied {
        /// Entries emitted across all nodes.
        emitted: u64,
        /// Entries applied across all nodes.
        applied: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MapNotEmpty {
                node,
                keys,
                threads,
            } => write!(
                f,
                "n{node}: M not empty at phase end ({keys} keys, {threads} aligned threads)"
            ),
            Violation::PendingNotDrained {
                node,
                count,
                sample,
            } => write!(
                f,
                "n{node}: D not drained at phase end ({count} outstanding; e.g. {})",
                sample.join(", ")
            ),
            Violation::BufferNotDrained {
                node,
                req,
                upd,
                reply,
            } => write!(
                f,
                "n{node}: coalescer not drained at phase end ({req} request, {upd} update, {reply} reply entries)"
            ),
            Violation::ReplyPathLeak {
                node,
                pushed,
                sent,
                buffered,
            } => write!(
                f,
                "n{node}: reply-path conservation broken: accepted {pushed} != sent {sent} + buffered {buffered}"
            ),
            Violation::RequestLeak {
                node,
                pushed,
                sent,
                buffered,
            } => write!(
                f,
                "n{node}: request conservation broken: pushed {pushed} != sent {sent} + buffered {buffered}"
            ),
            Violation::ReplyLeak {
                node,
                issued,
                installed,
                outstanding,
            } => write!(
                f,
                "n{node}: reply conservation broken: issued {issued} != installed {installed} + outstanding {outstanding}"
            ),
            Violation::UpdateLeak {
                emitted,
                applied,
                buffered,
            } => write!(
                f,
                "updates leaked: emitted {emitted} != applied {applied} + buffered {buffered} (lossless run)"
            ),
            Violation::UpdateOverApplied { emitted, applied } => write!(
                f,
                "updates over-applied: {applied} applied > {emitted} emitted (duplicate folded twice)"
            ),
        }
    }
}

/// Conservation laws that hold on **any** run, completed or stalled, lossy
/// or not. A violation here is a runtime bug regardless of fault plan.
pub fn check_conservation(snaps: &[NodeSnapshot]) -> Vec<Violation> {
    let mut out = Vec::new();
    for s in snaps {
        if s.req_pushed != s.req_sent + s.req_buffered as u64 {
            out.push(Violation::RequestLeak {
                node: s.node,
                pushed: s.req_pushed,
                sent: s.req_sent,
                buffered: s.req_buffered,
            });
        }
        if s.reply_pushed != s.reply_sent + s.reply_buffered as u64 {
            out.push(Violation::ReplyPathLeak {
                node: s.node,
                pushed: s.reply_pushed,
                sent: s.reply_sent,
                buffered: s.reply_buffered,
            });
        }
        if s.requests_issued != s.objects_installed + s.pending_requests as u64 {
            out.push(Violation::ReplyLeak {
                node: s.node,
                issued: s.requests_issued,
                installed: s.objects_installed,
                outstanding: s.pending_requests,
            });
        }
    }
    let emitted: u64 = snaps.iter().map(|s| s.updates_emitted).sum();
    let applied: u64 = snaps.iter().map(|s| s.updates_applied).sum();
    if applied > emitted {
        out.push(Violation::UpdateOverApplied { emitted, applied });
    }
    out
}

/// Full end-of-phase check for a run that reported `completed`.
///
/// `lossy` says whether the fault plan could have dropped packets: on a
/// completed lossy run only fire-and-forget updates can have been lost
/// (a lost request or reply necessarily stalls the phase), so update
/// conservation relaxes to at-most-once; everything else must still hold
/// exactly.
pub fn check_completed(snaps: &[NodeSnapshot], lossy: bool) -> Vec<Violation> {
    let mut out = check_conservation(snaps);
    for s in snaps {
        if s.map_keys > 0 || s.map_threads > 0 {
            out.push(Violation::MapNotEmpty {
                node: s.node,
                keys: s.map_keys,
                threads: s.map_threads,
            });
        }
        if s.pending_requests > 0 {
            out.push(Violation::PendingNotDrained {
                node: s.node,
                count: s.pending_requests,
                sample: s.pending_sample.clone(),
            });
        }
        if s.req_buffered > 0 || s.upd_buffered > 0 || s.reply_buffered > 0 {
            out.push(Violation::BufferNotDrained {
                node: s.node,
                req: s.req_buffered,
                upd: s.upd_buffered,
                reply: s.reply_buffered,
            });
        }
    }
    if !lossy {
        let emitted: u64 = snaps.iter().map(|s| s.updates_emitted).sum();
        let applied: u64 = snaps.iter().map(|s| s.updates_applied).sum();
        let buffered: u64 = snaps.iter().map(|s| s.upd_buffered as u64).sum();
        if applied + buffered != emitted {
            out.push(Violation::UpdateLeak {
                emitted,
                applied,
                buffered,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(node: u16) -> NodeSnapshot {
        NodeSnapshot {
            node,
            requests_issued: 10,
            objects_installed: 10,
            req_pushed: 10,
            req_sent: 10,
            updates_emitted: 4,
            updates_applied: 4,
            upd_sent: 2,
            reply_pushed: 10,
            reply_sent: 10,
            request_msgs: 3,
            reply_msgs: 2,
            update_msgs: 1,
            ..NodeSnapshot::default()
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        let snaps = vec![clean(0), clean(1)];
        assert!(check_completed(&snaps, false).is_empty());
        assert!(check_conservation(&snaps).is_empty());
    }

    #[test]
    fn leftover_map_is_reported() {
        let mut s = clean(3);
        s.map_keys = 2;
        s.map_threads = 7;
        let v = check_completed(&[s], false);
        assert!(matches!(
            v[0],
            Violation::MapNotEmpty {
                node: 3,
                keys: 2,
                threads: 7
            }
        ));
        let msg = v[0].to_string();
        assert!(msg.contains("n3") && msg.contains("M not empty"), "{msg}");
    }

    #[test]
    fn stuck_pending_names_pointers() {
        let mut s = clean(1);
        s.pending_requests = 1;
        s.pending_sample = vec!["<n2:c0:#5>".into()];
        // Conservation still balances: issued == installed + outstanding.
        s.requests_issued = 11;
        let v = check_completed(&[s], false);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("<n2:c0:#5>"));
    }

    #[test]
    fn reply_leak_detected() {
        let mut s = clean(0);
        s.objects_installed = 11; // double-install
        let v = check_conservation(&[s]);
        assert!(matches!(v[0], Violation::ReplyLeak { node: 0, .. }));
    }

    #[test]
    fn reply_path_leak_detected() {
        let mut s = clean(2);
        s.reply_sent = 8; // 2 entries vanished inside the scheduler
        let v = check_conservation(&[s]);
        assert!(matches!(v[0], Violation::ReplyPathLeak { node: 2, .. }));
        assert!(v[0].to_string().contains("reply-path"));
        // Balanced by buffered entries, it is conservation-clean again
        // but must be flagged as undrained on a completed run.
        let mut s = clean(2);
        s.reply_sent = 8;
        s.reply_buffered = 2;
        assert!(check_conservation(std::slice::from_ref(&s)).is_empty());
        let v = check_completed(&[s], false);
        assert!(matches!(
            v[0],
            Violation::BufferNotDrained { node: 2, reply: 2, .. }
        ));
    }

    #[test]
    fn update_over_apply_is_always_a_violation() {
        let mut a = clean(0);
        a.updates_applied = 6; // emitted only 4 on this node, 8 total
        let snaps = vec![a, clean(1)];
        // Even with `lossy = true` (drops allowed), applied > emitted is
        // impossible without a double-apply.
        assert!(check_conservation(&snaps)
            .iter()
            .any(|v| matches!(v, Violation::UpdateOverApplied { .. })));
    }

    #[test]
    fn lossy_run_tolerates_lost_updates_only() {
        let mut a = clean(0);
        a.updates_applied = 2; // 2 of its 4 emissions were dropped
        let snaps = vec![a, clean(1)];
        assert!(check_completed(&snaps, true).is_empty());
        assert!(check_completed(&snaps, false)
            .iter()
            .any(|v| matches!(v, Violation::UpdateLeak { .. })));
    }
}
