//! Runtime-state invariants checked by the DST harness.
//!
//! The DPA runtime's correctness argument rests on a handful of conservation
//! laws over its two tables — **M** (pointer → aligned threads) and **D**
//! (outstanding requests) — and its coalescing buffers:
//!
//! * at phase end M and D are empty and every buffer is drained;
//! * every entry pushed into a coalescer is either sent or still buffered
//!   (nothing silently vanishes inside the runtime) — separately on the
//!   request path and on the owner-side reply path, whose scheduler has
//!   its own buffers;
//! * every distinct request issued is either installed or still outstanding
//!   (replies are deduplicated, so duplicated delivery cannot over-install);
//! * reduction entries are applied **at most once** machine-wide — exactly
//!   once when the network loses nothing.
//!
//! Each node driver exports a [`NodeSnapshot`] after a run;
//! [`check_completed`] and [`check_conservation`] turn a set of snapshots
//! into a (hopefully empty) list of [`Violation`]s. The laws hold across
//! *every* schedule and fault plan, which is what makes them useful DST
//! oracles: a scheduling bug shows up as a leak long before it corrupts an
//! application result.
//!
//! Object migration adds its own laws: every object lives at **exactly one
//! home** (an adoption implies a matching stub, no object is adopted
//! twice, and — on a lossless completed run — no stub points at a home
//! that never materialized), forwarding chains are bounded at one hop (a
//! node never both adopts and departs the same object), migration
//! shipments conserve like every other coalesced path, and affinity
//! reports all land (lossless runs).
//!
//! Read-mostly replication adds two more: **broadcast conservation**
//! (replica entries installed after dedup never exceed entries sent, and
//! match exactly on lossless completed runs) and **coherence** (every
//! replica a consumer installed matches, pointer and generation, an entry
//! its owner's directory actually broadcast — a consumer can never hold a
//! generation its owner never published).

use global_heap::GPtr;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Post-run runtime state of one node, in entry counts.
///
/// Produced by `DpaProc::snapshot` / `CachingProc::snapshot`; consumed by
/// the checkers below. All counters are cumulative over the phase except
/// the `*_buffered`, `pending_*` and `map_*` fields, which are the state
/// left at the instant the run stopped.
#[derive(Clone, Debug, Default)]
pub struct NodeSnapshot {
    /// Which node this snapshot describes.
    pub node: u16,
    /// Keys still present in M (0 after a completed phase).
    pub map_keys: usize,
    /// Threads still aligned under some key in M.
    pub map_threads: u64,
    /// Entries still present in D.
    pub pending_requests: usize,
    /// Up to a few of the stuck pointers, rendered for diagnostics.
    pub pending_sample: Vec<String>,
    /// Replies owed: request entries sent whose reply has not installed.
    pub in_flight: usize,
    /// Distinct requests ever issued (D inserts).
    pub requests_issued: u64,
    /// Remote objects installed by fresh (non-duplicate) replies.
    pub objects_installed: u64,
    /// Request entries pushed into the coalescer.
    pub req_pushed: u64,
    /// Request entries actually sent on the wire.
    pub req_sent: u64,
    /// Request entries still buffered (coalescer plus held batches).
    pub req_buffered: usize,
    /// Reduction entries emitted by the application on this node.
    pub updates_emitted: u64,
    /// Reduction entries applied on this node (local and received).
    pub updates_applied: u64,
    /// Reduction entries sent on the wire.
    pub upd_sent: u64,
    /// Reduction entries still buffered for sending.
    pub upd_buffered: usize,
    /// Owner-side reply entries accepted for sending (immediate service or
    /// pushed into the reply scheduler).
    pub reply_pushed: u64,
    /// Owner-side reply entries sent on the wire.
    pub reply_sent: u64,
    /// Owner-side reply entries still buffered in the reply scheduler.
    pub reply_buffered: usize,
    /// Per-pointer reply accounting for this node's hottest keys:
    /// `(pointer bits, entries pushed, entries sent)`, hottest first.
    /// On a completed run with the scheduler drained, pushed must equal
    /// sent for every key — the hot-hub conservation oracle (aggregate
    /// counters can mask a bug that drops a hub entry while inventing
    /// one for a cold key).
    pub reply_hot: Vec<(u64, u64, u64)>,
    /// Request messages sent (per-path message accounting).
    pub request_msgs: u64,
    /// Reply messages sent.
    pub reply_msgs: u64,
    /// Update messages sent.
    pub update_msgs: u64,
    /// Affinity entries sent on the wire.
    pub aff_sent: u64,
    /// Affinity entries received (after sequence dedup).
    pub aff_recv: u64,
    /// Migration entries committed for shipping (stub installed).
    pub mig_pushed: u64,
    /// Migration entries sent on the wire.
    pub mig_sent: u64,
    /// Migration entries still buffered in the shipment coalescer.
    pub mig_buffered: usize,
    /// Forwarded requests still parked waiting for their `Migrate`.
    pub orphans_pending: usize,
    /// Pointer bits of every object this node adopted (sorted).
    pub adopted_ptrs: Vec<u64>,
    /// Pointer bits of every object that departed from this node (sorted).
    pub departed_ptrs: Vec<u64>,
    /// Differential: PhaseDelta entries sent to consumers carrying this
    /// node's objects.
    pub delta_entries_sent: u64,
    /// Differential: PhaseDelta entries received (after sequence dedup).
    pub delta_entries_recv: u64,
    /// Differential: homes whose boundary delta this node is still gated
    /// on (0 after any completed phase — a gated node cannot finish).
    pub deltas_awaited: usize,
    /// Differential: held cache entries whose generation stamp disagrees
    /// with the object's current generation — the delta-conservation
    /// oracle ("no stale cache entry survives a home or value change").
    pub stale_cache_entries: usize,
    /// Replication: replica entries this owner put on the wire in
    /// `Replicate` broadcasts.
    pub repl_entries_sent: u64,
    /// Replication: replica entries received (after sequence dedup).
    pub repl_entries_recv: u64,
    /// Replication: this owner's replica directory as sorted
    /// `(pointer bits, generation)` pairs.
    pub replica_dir: Vec<(u64, u32)>,
    /// Replication: replicas installed from broadcasts this phase, as
    /// sorted `(pointer bits, generation)` pairs.
    pub replica_held: Vec<(u64, u32)>,
    /// Every strip the adaptive k-bound controller applied on this node,
    /// initial strip first (empty under a fixed strip).
    pub strip_schedule: Vec<u32>,
    /// The adaptive controller's `[min, max]` bounds (`None` under a
    /// fixed strip — the schedule is then unchecked because it is empty).
    pub strip_bounds: Option<(u32, u32)>,
}

/// One violated invariant, with enough context to act on.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// M still holds aligned threads after the phase ended.
    MapNotEmpty {
        /// Offending node.
        node: u16,
        /// Keys left in M.
        keys: usize,
        /// Threads still aligned.
        threads: u64,
    },
    /// D still holds outstanding requests after the phase ended.
    PendingNotDrained {
        /// Offending node.
        node: u16,
        /// Entries left in D.
        count: usize,
        /// A sample of the stuck pointers.
        sample: Vec<String>,
    },
    /// A coalescing buffer still holds entries after the phase ended.
    BufferNotDrained {
        /// Offending node.
        node: u16,
        /// Request entries left buffered.
        req: usize,
        /// Reduction entries left buffered.
        upd: usize,
        /// Reply entries left buffered in the reply scheduler.
        reply: usize,
        /// Migration entries left buffered in the shipment coalescer.
        mig: usize,
    },
    /// Request entries pushed ≠ sent + buffered: the communication
    /// scheduler lost or invented entries.
    RequestLeak {
        /// Offending node.
        node: u16,
        /// Entries pushed into the coalescer.
        pushed: u64,
        /// Entries sent on the wire.
        sent: u64,
        /// Entries still buffered.
        buffered: usize,
    },
    /// Owner-side reply entries accepted ≠ sent + buffered: the reply
    /// scheduler lost or invented entries.
    ReplyPathLeak {
        /// Offending node.
        node: u16,
        /// Reply entries accepted for sending.
        pushed: u64,
        /// Reply entries sent on the wire.
        sent: u64,
        /// Reply entries still buffered.
        buffered: usize,
    },
    /// Per-key reply conservation broken on a completed run with the
    /// reply scheduler drained: entries pushed for one hot pointer ≠
    /// entries sent for it. The aggregate [`Violation::ReplyPathLeak`]
    /// law can balance while a hub's entry is swallowed and a cold key's
    /// invented; this pins the loss to the key.
    HotKeyReplyLeak {
        /// Offending node.
        node: u16,
        /// Raw pointer bits of the unbalanced key.
        ptr: u64,
        /// Entries pushed for this key.
        pushed: u64,
        /// Entries sent for this key.
        sent: u64,
    },
    /// Requests issued ≠ objects installed + still outstanding: a reply
    /// was double-installed or an install happened unsolicited.
    ReplyLeak {
        /// Offending node.
        node: u16,
        /// Distinct requests issued.
        issued: u64,
        /// Objects installed.
        installed: u64,
        /// Requests still outstanding.
        outstanding: usize,
    },
    /// Machine-wide reduction conservation failed on a lossless run:
    /// entries applied ≠ entries emitted (+ still buffered).
    UpdateLeak {
        /// Entries emitted across all nodes.
        emitted: u64,
        /// Entries applied across all nodes.
        applied: u64,
        /// Entries still buffered across all nodes.
        buffered: u64,
    },
    /// More reduction entries applied than emitted: a duplicated update
    /// was folded in twice. This is a violation on *any* run, lossy or
    /// not — dedup must make application at-most-once.
    UpdateOverApplied {
        /// Entries emitted across all nodes.
        emitted: u64,
        /// Entries applied across all nodes.
        applied: u64,
    },
    /// Migration entries committed ≠ sent + buffered: a shipment vanished
    /// inside the migration coalescer (or was invented).
    MigrationLeak {
        /// Offending node.
        node: u16,
        /// Entries committed (stub installed).
        pushed: u64,
        /// Entries sent on the wire.
        sent: u64,
        /// Entries still buffered.
        buffered: usize,
    },
    /// A node both adopted an object and departed it: a forwarding chain
    /// of length > 1, which the protocol promises never to create.
    ForwardChainTooLong {
        /// Offending node.
        node: u16,
        /// The twice-moved object (pointer bits).
        ptr: u64,
    },
    /// An object is adopted somewhere but no node holds its forwarding
    /// stub — adoption without a departure, so the object has two homes.
    AdoptionWithoutStub {
        /// The adopting node.
        node: u16,
        /// The object (pointer bits).
        ptr: u64,
    },
    /// Two or more nodes adopted the same object.
    ObjectDoubleAdopted {
        /// The object (pointer bits).
        ptr: u64,
        /// Every node claiming adoption.
        nodes: Vec<u16>,
    },
    /// A stub points at a home that never materialized (lossless completed
    /// run): the object's payload left its birth home and was never
    /// adopted — the object is gone.
    ObjectLost {
        /// The birth home holding the dangling stub.
        node: u16,
        /// The lost object (pointer bits).
        ptr: u64,
    },
    /// Forwarded requests still parked at phase end (lossless completed
    /// run): a `Forward` arrived but its `Migrate` never did.
    OrphanNotServed {
        /// The node holding the orphans.
        node: u16,
        /// How many forwarded requests are still parked.
        count: usize,
    },
    /// Machine-wide affinity conservation failed on a lossless run:
    /// entries received (after dedup) ≠ entries sent.
    AffinityLeak {
        /// Affinity entries sent across all nodes.
        sent: u64,
        /// Affinity entries received across all nodes.
        recv: u64,
    },
    /// A cache entry whose generation stamp disagrees with the object's
    /// current generation survived to the end of a completed phase: a
    /// boundary delta failed to invalidate a changed object's carried
    /// copy, so threads may have read the previous timestep's value.
    StaleCacheEntry {
        /// Offending node.
        node: u16,
        /// How many held entries are stale.
        count: usize,
    },
    /// A node finished a phase while still gated on boundary deltas — the
    /// gate logic let work through before every carried home reported.
    DeltaGateOpen {
        /// Offending node.
        node: u16,
        /// Homes whose delta never arrived.
        awaited: usize,
    },
    /// Machine-wide PhaseDelta conservation failed on a lossless run:
    /// entries received (after dedup) ≠ entries sent.
    DeltaLeak {
        /// Delta entries sent across all nodes.
        sent: u64,
        /// Delta entries received across all nodes.
        recv: u64,
    },
    /// Machine-wide replica-broadcast conservation failed: on any run,
    /// entries installed (after dedup) exceeding entries sent means an
    /// install was invented or dedup let a duplicate through; on a
    /// lossless completed run the two must match exactly.
    ReplicaLeak {
        /// Replica entries sent across all nodes.
        sent: u64,
        /// Replica entries received (after dedup) across all nodes.
        recv: u64,
    },
    /// A consumer holds a replica whose `(pointer, generation)` matches no
    /// directory snapshot of its owner: the copy was installed at a
    /// generation the owner never published — a coherence breach no
    /// schedule or fault plan can excuse.
    ReplicaIncoherent {
        /// The consumer holding the bad replica.
        node: u16,
        /// The replicated object (pointer bits).
        ptr: u64,
        /// The generation the consumer holds.
        gen: u32,
    },
    /// The adaptive strip controller applied a strip outside its
    /// configured `[min, max]` bounds — the controller's hard promise,
    /// independent of schedule or fault plan.
    StripOutOfBounds {
        /// Offending node.
        node: u16,
        /// The out-of-bounds strip that was applied.
        strip: u32,
        /// Configured lower bound.
        min: u32,
        /// Configured upper bound.
        max: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MapNotEmpty {
                node,
                keys,
                threads,
            } => write!(
                f,
                "n{node}: M not empty at phase end ({keys} keys, {threads} aligned threads)"
            ),
            Violation::PendingNotDrained {
                node,
                count,
                sample,
            } => write!(
                f,
                "n{node}: D not drained at phase end ({count} outstanding; e.g. {})",
                sample.join(", ")
            ),
            Violation::BufferNotDrained {
                node,
                req,
                upd,
                reply,
                mig,
            } => write!(
                f,
                "n{node}: coalescer not drained at phase end ({req} request, {upd} update, {reply} reply, {mig} migration entries)"
            ),
            Violation::ReplyPathLeak {
                node,
                pushed,
                sent,
                buffered,
            } => write!(
                f,
                "n{node}: reply-path conservation broken: accepted {pushed} != sent {sent} + buffered {buffered}"
            ),
            Violation::RequestLeak {
                node,
                pushed,
                sent,
                buffered,
            } => write!(
                f,
                "n{node}: request conservation broken: pushed {pushed} != sent {sent} + buffered {buffered}"
            ),
            Violation::HotKeyReplyLeak {
                node,
                ptr,
                pushed,
                sent,
            } => write!(
                f,
                "n{node}: hot-key reply conservation broken for ptr {ptr:#x}: pushed {pushed} != sent {sent}"
            ),
            Violation::ReplyLeak {
                node,
                issued,
                installed,
                outstanding,
            } => write!(
                f,
                "n{node}: reply conservation broken: issued {issued} != installed {installed} + outstanding {outstanding}"
            ),
            Violation::UpdateLeak {
                emitted,
                applied,
                buffered,
            } => write!(
                f,
                "updates leaked: emitted {emitted} != applied {applied} + buffered {buffered} (lossless run)"
            ),
            Violation::UpdateOverApplied { emitted, applied } => write!(
                f,
                "updates over-applied: {applied} applied > {emitted} emitted (duplicate folded twice)"
            ),
            Violation::MigrationLeak {
                node,
                pushed,
                sent,
                buffered,
            } => write!(
                f,
                "n{node}: migration conservation broken: committed {pushed} != sent {sent} + buffered {buffered}"
            ),
            Violation::ForwardChainTooLong { node, ptr } => write!(
                f,
                "n{node}: forwarding chain > 1 hop: {} both adopted and departed here",
                GPtr::from_bits(*ptr)
            ),
            Violation::AdoptionWithoutStub { node, ptr } => write!(
                f,
                "n{node}: adopted {} but no node holds its forwarding stub (two homes)",
                GPtr::from_bits(*ptr)
            ),
            Violation::ObjectDoubleAdopted { ptr, nodes } => write!(
                f,
                "{} adopted by {} nodes: {:?}",
                GPtr::from_bits(*ptr),
                nodes.len(),
                nodes
            ),
            Violation::ObjectLost { node, ptr } => write!(
                f,
                "n{node}: {} departed but was never adopted anywhere (object lost)",
                GPtr::from_bits(*ptr)
            ),
            Violation::OrphanNotServed { node, count } => write!(
                f,
                "n{node}: {count} forwarded request(s) still parked — their Migrate never landed"
            ),
            Violation::AffinityLeak { sent, recv } => write!(
                f,
                "affinity leaked: sent {sent} entries != received {recv} (lossless run)"
            ),
            Violation::StaleCacheEntry { node, count } => write!(
                f,
                "n{node}: {count} stale cache entr{} survived the phase (generation stamp behind the object)",
                if *count == 1 { "y" } else { "ies" }
            ),
            Violation::DeltaGateOpen { node, awaited } => write!(
                f,
                "n{node}: phase completed while still awaiting boundary deltas from {awaited} home(s)"
            ),
            Violation::DeltaLeak { sent, recv } => write!(
                f,
                "phase deltas leaked: sent {sent} entries != received {recv} (lossless run)"
            ),
            Violation::ReplicaLeak { sent, recv } => write!(
                f,
                "replica broadcasts leaked: sent {sent} entries != installed {recv}"
            ),
            Violation::ReplicaIncoherent { node, ptr, gen } => write!(
                f,
                "n{node}: holds replica of {} at generation {gen}, which its owner never published",
                GPtr::from_bits(*ptr)
            ),
            Violation::StripOutOfBounds {
                node,
                strip,
                min,
                max,
            } => write!(
                f,
                "n{node}: adaptive strip {strip} escaped its bounds [{min}, {max}]"
            ),
        }
    }
}

/// Conservation laws that hold on **any** run, completed or stalled, lossy
/// or not. A violation here is a runtime bug regardless of fault plan.
pub fn check_conservation(snaps: &[NodeSnapshot]) -> Vec<Violation> {
    let mut out = Vec::new();
    for s in snaps {
        if s.req_pushed != s.req_sent + s.req_buffered as u64 {
            out.push(Violation::RequestLeak {
                node: s.node,
                pushed: s.req_pushed,
                sent: s.req_sent,
                buffered: s.req_buffered,
            });
        }
        if s.reply_pushed != s.reply_sent + s.reply_buffered as u64 {
            out.push(Violation::ReplyPathLeak {
                node: s.node,
                pushed: s.reply_pushed,
                sent: s.reply_sent,
                buffered: s.reply_buffered,
            });
        }
        if s.requests_issued != s.objects_installed + s.pending_requests as u64 {
            out.push(Violation::ReplyLeak {
                node: s.node,
                issued: s.requests_issued,
                installed: s.objects_installed,
                outstanding: s.pending_requests,
            });
        }
        if let Some((min, max)) = s.strip_bounds {
            for &strip in &s.strip_schedule {
                if strip < min || strip > max {
                    out.push(Violation::StripOutOfBounds {
                        node: s.node,
                        strip,
                        min,
                        max,
                    });
                }
            }
        }
    }
    let emitted: u64 = snaps.iter().map(|s| s.updates_emitted).sum();
    let applied: u64 = snaps.iter().map(|s| s.updates_applied).sum();
    if applied > emitted {
        out.push(Violation::UpdateOverApplied { emitted, applied });
    }
    // Broadcast at-most-once: installs (post-dedup) can trail sends on a
    // lossy or stalled run, but can never exceed them.
    let rsent: u64 = snaps.iter().map(|s| s.repl_entries_sent).sum();
    let rrecv: u64 = snaps.iter().map(|s| s.repl_entries_recv).sum();
    if rrecv > rsent {
        out.push(Violation::ReplicaLeak {
            sent: rsent,
            recv: rrecv,
        });
    }
    // Coherence holds on any run, completed or stalled, lossy or not: a
    // held replica exists only because a broadcast delivered it, and a
    // broadcast carries exactly what the owner's directory published
    // (drop and dup cannot manufacture a generation). Multi-phase checks
    // feed every phase's snapshots, so a held copy must match *some*
    // directory snapshot of its owner.
    let mut published: HashSet<(u64, u32)> = HashSet::new();
    for s in snaps {
        for &(ptr, gen) in &s.replica_dir {
            if GPtr::from_bits(ptr).node() == s.node {
                published.insert((ptr, gen));
            }
        }
    }
    for s in snaps {
        for &(ptr, gen) in &s.replica_held {
            if !published.contains(&(ptr, gen)) {
                out.push(Violation::ReplicaIncoherent {
                    node: s.node,
                    ptr,
                    gen,
                });
            }
        }
    }
    out.extend(check_migration_conservation(snaps));
    out
}

/// Object-migration laws that hold on **any** run: shipment conservation,
/// the one-hop forwarding bound, single-home exclusivity. (Stub installed
/// strictly before the shipment leaves, so even a snapshot of a stalled
/// run can never show an adoption without its stub.)
fn check_migration_conservation(snaps: &[NodeSnapshot]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut adopters: HashMap<u64, Vec<u16>> = HashMap::new();
    let mut departed_anywhere: HashSet<u64> = HashSet::new();
    for s in snaps {
        if s.mig_pushed != s.mig_sent + s.mig_buffered as u64 {
            out.push(Violation::MigrationLeak {
                node: s.node,
                pushed: s.mig_pushed,
                sent: s.mig_sent,
                buffered: s.mig_buffered,
            });
        }
        let departed_here: HashSet<u64> = s.departed_ptrs.iter().copied().collect();
        departed_anywhere.extend(&departed_here);
        for &ptr in &s.adopted_ptrs {
            adopters.entry(ptr).or_default().push(s.node);
            if departed_here.contains(&ptr) {
                out.push(Violation::ForwardChainTooLong { node: s.node, ptr });
            }
        }
    }
    let mut ptrs: Vec<u64> = adopters.keys().copied().collect();
    ptrs.sort_unstable();
    for ptr in ptrs {
        // Distinct adopters only: multi-phase checks feed every phase's
        // snapshot of the same node, so repeats are expected — exclusivity
        // is about two *different* nodes claiming the object.
        let mut nodes = adopters[&ptr].clone();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.len() > 1 {
            out.push(Violation::ObjectDoubleAdopted { ptr, nodes });
        }
        if !departed_anywhere.contains(&ptr) {
            out.push(Violation::AdoptionWithoutStub {
                node: adopters[&ptr][0],
                ptr,
            });
        }
    }
    out
}

/// Full end-of-phase check for a run that reported `completed`.
///
/// `lossy` says whether the fault plan could have dropped packets: on a
/// completed lossy run only fire-and-forget updates can have been lost
/// (a lost request or reply necessarily stalls the phase), so update
/// conservation relaxes to at-most-once; everything else must still hold
/// exactly.
pub fn check_completed(snaps: &[NodeSnapshot], lossy: bool) -> Vec<Violation> {
    let mut out = check_conservation(snaps);
    for s in snaps {
        if s.map_keys > 0 || s.map_threads > 0 {
            out.push(Violation::MapNotEmpty {
                node: s.node,
                keys: s.map_keys,
                threads: s.map_threads,
            });
        }
        if s.pending_requests > 0 {
            out.push(Violation::PendingNotDrained {
                node: s.node,
                count: s.pending_requests,
                sample: s.pending_sample.clone(),
            });
        }
        if s.req_buffered > 0 || s.upd_buffered > 0 || s.reply_buffered > 0 || s.mig_buffered > 0
        {
            out.push(Violation::BufferNotDrained {
                node: s.node,
                req: s.req_buffered,
                upd: s.upd_buffered,
                reply: s.reply_buffered,
                mig: s.mig_buffered,
            });
        }
        // Hot-key conservation: with the reply scheduler drained every
        // tracked key must balance exactly (per-key buffered counts are
        // not tracked, so the law is only provable once reply_buffered
        // is zero — when it is not, BufferNotDrained above already
        // fires). Holds on lossy runs too: these counters advance at the
        // owner before the wire can drop anything.
        if s.reply_buffered == 0 {
            for &(ptr, pushed, sent) in &s.reply_hot {
                if pushed != sent {
                    out.push(Violation::HotKeyReplyLeak {
                        node: s.node,
                        ptr,
                        pushed,
                        sent,
                    });
                }
            }
        }
        // Differential laws hold on any completed run, lossy or not: a
        // dropped PhaseDelta keeps its consumer gated (the phase stalls
        // rather than completing), so completion implies every delta
        // landed and every stale carry was invalidated before use.
        if s.deltas_awaited > 0 {
            out.push(Violation::DeltaGateOpen {
                node: s.node,
                awaited: s.deltas_awaited,
            });
        }
        if s.stale_cache_entries > 0 {
            out.push(Violation::StaleCacheEntry {
                node: s.node,
                count: s.stale_cache_entries,
            });
        }
    }
    if !lossy {
        let emitted: u64 = snaps.iter().map(|s| s.updates_emitted).sum();
        let applied: u64 = snaps.iter().map(|s| s.updates_applied).sum();
        let buffered: u64 = snaps.iter().map(|s| s.upd_buffered as u64).sum();
        if applied + buffered != emitted {
            out.push(Violation::UpdateLeak {
                emitted,
                applied,
                buffered,
            });
        }
        // On a lossless completed run the machine has drained every
        // message: all affinity landed, every shipped object was adopted,
        // and no forwarded request is still waiting for its Migrate.
        let sent: u64 = snaps.iter().map(|s| s.aff_sent).sum();
        let recv: u64 = snaps.iter().map(|s| s.aff_recv).sum();
        if sent != recv {
            out.push(Violation::AffinityLeak { sent, recv });
        }
        let dsent: u64 = snaps.iter().map(|s| s.delta_entries_sent).sum();
        let drecv: u64 = snaps.iter().map(|s| s.delta_entries_recv).sum();
        if dsent != drecv {
            out.push(Violation::DeltaLeak {
                sent: dsent,
                recv: drecv,
            });
        }
        // Every broadcast landed: on a lossless completed run replica
        // installs must match sends exactly (the at-most-once direction
        // is checked unconditionally in `check_conservation`).
        let rsent: u64 = snaps.iter().map(|s| s.repl_entries_sent).sum();
        let rrecv: u64 = snaps.iter().map(|s| s.repl_entries_recv).sum();
        if rsent != rrecv {
            out.push(Violation::ReplicaLeak {
                sent: rsent,
                recv: rrecv,
            });
        }
        let adopted_anywhere: HashSet<u64> = snaps
            .iter()
            .flat_map(|s| s.adopted_ptrs.iter().copied())
            .collect();
        for s in snaps {
            for &ptr in &s.departed_ptrs {
                if !adopted_anywhere.contains(&ptr) {
                    out.push(Violation::ObjectLost { node: s.node, ptr });
                }
            }
            if s.orphans_pending > 0 {
                out.push(Violation::OrphanNotServed {
                    node: s.node,
                    count: s.orphans_pending,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(node: u16) -> NodeSnapshot {
        NodeSnapshot {
            node,
            requests_issued: 10,
            objects_installed: 10,
            req_pushed: 10,
            req_sent: 10,
            updates_emitted: 4,
            updates_applied: 4,
            upd_sent: 2,
            reply_pushed: 10,
            reply_sent: 10,
            request_msgs: 3,
            reply_msgs: 2,
            update_msgs: 1,
            ..NodeSnapshot::default()
        }
    }

    #[test]
    fn clean_run_has_no_violations() {
        let snaps = vec![clean(0), clean(1)];
        assert!(check_completed(&snaps, false).is_empty());
        assert!(check_conservation(&snaps).is_empty());
    }

    #[test]
    fn leftover_map_is_reported() {
        let mut s = clean(3);
        s.map_keys = 2;
        s.map_threads = 7;
        let v = check_completed(&[s], false);
        assert!(matches!(
            v[0],
            Violation::MapNotEmpty {
                node: 3,
                keys: 2,
                threads: 7
            }
        ));
        let msg = v[0].to_string();
        assert!(msg.contains("n3") && msg.contains("M not empty"), "{msg}");
    }

    #[test]
    fn stuck_pending_names_pointers() {
        let mut s = clean(1);
        s.pending_requests = 1;
        s.pending_sample = vec!["<n2:c0:#5>".into()];
        // Conservation still balances: issued == installed + outstanding.
        s.requests_issued = 11;
        let v = check_completed(&[s], false);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("<n2:c0:#5>"));
    }

    #[test]
    fn reply_leak_detected() {
        let mut s = clean(0);
        s.objects_installed = 11; // double-install
        let v = check_conservation(&[s]);
        assert!(matches!(v[0], Violation::ReplyLeak { node: 0, .. }));
    }

    #[test]
    fn reply_path_leak_detected() {
        let mut s = clean(2);
        s.reply_sent = 8; // 2 entries vanished inside the scheduler
        let v = check_conservation(&[s]);
        assert!(matches!(v[0], Violation::ReplyPathLeak { node: 2, .. }));
        assert!(v[0].to_string().contains("reply-path"));
        // Balanced by buffered entries, it is conservation-clean again
        // but must be flagged as undrained on a completed run.
        let mut s = clean(2);
        s.reply_sent = 8;
        s.reply_buffered = 2;
        assert!(check_conservation(std::slice::from_ref(&s)).is_empty());
        let v = check_completed(&[s], false);
        assert!(matches!(
            v[0],
            Violation::BufferNotDrained { node: 2, reply: 2, .. }
        ));
    }

    #[test]
    fn hot_key_reply_leak_detected() {
        // Balanced hot keys on a drained scheduler: clean.
        let mut s = clean(1);
        s.reply_hot = vec![(0x42, 7, 7), (0x43, 3, 3)];
        assert!(check_completed(std::slice::from_ref(&s), false).is_empty());
        // A hub entry swallowed while a cold key invented one: the
        // aggregate reply-path law still balances (10 == 10), only the
        // per-key oracle sees it.
        let mut s = clean(1);
        s.reply_hot = vec![(0x42, 7, 6), (0x43, 3, 4)];
        let v = check_completed(std::slice::from_ref(&s), false);
        assert_eq!(v.len(), 2);
        assert!(matches!(
            v[0],
            Violation::HotKeyReplyLeak {
                node: 1,
                ptr: 0x42,
                pushed: 7,
                sent: 6
            }
        ));
        let msg = v[0].to_string();
        assert!(msg.contains("hot-key") && msg.contains("0x42"), "{msg}");
        // The law also holds on completed lossy runs (counters advance
        // at the owner, before the wire can drop anything).
        assert_eq!(check_completed(std::slice::from_ref(&s), true).len(), 2);
        // An undrained scheduler makes the per-key law unprovable:
        // BufferNotDrained fires instead, not a per-key false positive.
        let mut s = clean(1);
        s.reply_pushed = 12;
        s.reply_buffered = 2;
        s.reply_hot = vec![(0x42, 9, 7)];
        let v = check_completed(std::slice::from_ref(&s), false);
        assert!(v
            .iter()
            .all(|v| !matches!(v, Violation::HotKeyReplyLeak { .. })));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::BufferNotDrained { .. })));
    }

    #[test]
    fn update_over_apply_is_always_a_violation() {
        let mut a = clean(0);
        a.updates_applied = 6; // emitted only 4 on this node, 8 total
        let snaps = vec![a, clean(1)];
        // Even with `lossy = true` (drops allowed), applied > emitted is
        // impossible without a double-apply.
        assert!(check_conservation(&snaps)
            .iter()
            .any(|v| matches!(v, Violation::UpdateOverApplied { .. })));
    }

    #[test]
    fn clean_migration_run_has_no_violations() {
        // n0 departed an object that n1 adopted; affinity balanced.
        let mut a = clean(0);
        a.departed_ptrs = vec![42];
        a.aff_recv = 5;
        let mut b = clean(1);
        b.adopted_ptrs = vec![42];
        b.aff_sent = 5;
        b.mig_pushed = 0;
        let snaps = vec![a, b];
        assert!(check_completed(&snaps, false).is_empty());
    }

    #[test]
    fn migration_leak_detected() {
        let mut s = clean(0);
        s.mig_pushed = 3;
        s.mig_sent = 2; // one shipment vanished
        let v = check_conservation(&[s]);
        assert!(matches!(v[0], Violation::MigrationLeak { node: 0, .. }));
        assert!(v[0].to_string().contains("migration conservation"));
    }

    #[test]
    fn forwarding_chain_bound_is_checked() {
        let mut s = clean(2);
        s.adopted_ptrs = vec![7];
        s.departed_ptrs = vec![7]; // adopted here, then shipped on: chain of 2
        let v = check_conservation(std::slice::from_ref(&s));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::ForwardChainTooLong { node: 2, ptr: 7 })));
    }

    #[test]
    fn adoption_needs_a_stub_somewhere() {
        let mut a = clean(0);
        a.adopted_ptrs = vec![9]; // nobody departed 9
        let v = check_conservation(&[a, clean(1)]);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::AdoptionWithoutStub { node: 0, ptr: 9 })));
    }

    #[test]
    fn double_adoption_detected() {
        let mut a = clean(0);
        a.departed_ptrs = vec![5];
        let mut b = clean(1);
        b.adopted_ptrs = vec![5];
        let mut c = clean(2);
        c.adopted_ptrs = vec![5];
        let v = check_conservation(&[a, b, c]);
        assert!(v.iter().any(
            |v| matches!(v, Violation::ObjectDoubleAdopted { ptr: 5, nodes } if nodes == &[1, 2])
        ));
    }

    #[test]
    fn repeated_snapshots_of_one_adopter_are_not_double_adoption() {
        // Multi-phase runs snapshot the same node once per phase; the
        // carried table makes the adoption show up repeatedly. That is one
        // adopter, not two.
        let mut a = clean(0);
        a.departed_ptrs = vec![5];
        let mut b1 = clean(1);
        b1.adopted_ptrs = vec![5];
        let b2 = b1.clone();
        let v = check_conservation(&[a, b1, b2]);
        assert!(
            !v.iter().any(|v| matches!(v, Violation::ObjectDoubleAdopted { .. })),
            "got: {v:?}"
        );
    }

    #[test]
    fn lost_object_and_stranded_orphans_flagged_on_lossless_runs_only() {
        let mut a = clean(0);
        a.departed_ptrs = vec![11]; // Migrate dropped: nobody adopted
        let mut b = clean(1);
        b.orphans_pending = 2;
        let snaps = vec![a, b];
        assert!(check_completed(&snaps, true).is_empty(), "lossy run tolerates both");
        let v = check_completed(&snaps, false);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::ObjectLost { node: 0, ptr: 11 })));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::OrphanNotServed { node: 1, count: 2 })));
    }

    #[test]
    fn affinity_conservation_on_lossless_runs() {
        let mut a = clean(0);
        a.aff_sent = 10;
        let mut b = clean(1);
        b.aff_recv = 7; // three entries lost
        let snaps = vec![a, b];
        assert!(check_completed(&snaps, true).is_empty());
        assert!(check_completed(&snaps, false)
            .iter()
            .any(|v| matches!(v, Violation::AffinityLeak { sent: 10, recv: 7 })));
    }

    #[test]
    fn strip_schedule_audited_against_bounds() {
        let mut s = clean(1);
        s.strip_bounds = Some((8, 512));
        s.strip_schedule = vec![64, 128, 256, 512, 512];
        assert!(check_conservation(std::slice::from_ref(&s)).is_empty());
        s.strip_schedule.push(1024); // escaped the cap
        let v = check_conservation(std::slice::from_ref(&s));
        assert!(matches!(
            v[0],
            Violation::StripOutOfBounds {
                node: 1,
                strip: 1024,
                min: 8,
                max: 512
            }
        ));
        assert!(v[0].to_string().contains("escaped its bounds"));
        // A fixed-strip snapshot carries no bounds and is never audited.
        let mut f = clean(2);
        f.strip_schedule = vec![9999];
        f.strip_bounds = None;
        assert!(check_conservation(&[f]).is_empty());
    }

    #[test]
    fn stale_cache_and_open_gate_flagged_even_on_lossy_completions() {
        // A completed phase can never legitimately hold a stale carry or
        // an open delta gate — drops stall the consumer instead.
        let mut s = clean(2);
        s.stale_cache_entries = 1;
        s.deltas_awaited = 3;
        let v = check_completed(std::slice::from_ref(&s), true);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::StaleCacheEntry { node: 2, count: 1 })));
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::DeltaGateOpen { node: 2, awaited: 3 })));
        assert!(v[0].to_string().contains("n2"));
        // ...but they are end-of-phase laws, not conservation laws: a
        // stalled snapshot mid-gate is legal.
        assert!(check_conservation(&[s]).is_empty());
    }

    #[test]
    fn delta_conservation_on_lossless_runs() {
        let mut a = clean(0);
        a.delta_entries_sent = 6;
        let mut b = clean(1);
        b.delta_entries_recv = 4; // two entries vanished
        let snaps = vec![a, b];
        assert!(check_completed(&snaps, true).is_empty());
        assert!(check_completed(&snaps, false)
            .iter()
            .any(|v| matches!(v, Violation::DeltaLeak { sent: 6, recv: 4 })));
    }

    #[test]
    fn replica_over_install_is_always_a_violation() {
        let mut a = clean(0);
        a.repl_entries_sent = 3;
        let mut b = clean(1);
        b.repl_entries_recv = 4; // one more install than ever sent
        let v = check_conservation(&[a, b]);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::ReplicaLeak { sent: 3, recv: 4 })));
        assert!(v[0].to_string().contains("replica broadcasts leaked"));
    }

    #[test]
    fn replica_conservation_exact_on_lossless_completions() {
        let mut a = clean(0);
        a.repl_entries_sent = 5;
        let mut b = clean(1);
        b.repl_entries_recv = 3; // two broadcasts dropped
        let snaps = vec![a, b];
        assert!(
            check_conservation(&snaps).is_empty(),
            "a lossy/stalled run may trail sends"
        );
        assert!(check_completed(&snaps, true).is_empty());
        assert!(check_completed(&snaps, false)
            .iter()
            .any(|v| matches!(v, Violation::ReplicaLeak { sent: 5, recv: 3 })));
    }

    #[test]
    fn replica_coherence_matches_owner_directory() {
        // Owner n0 publishes ptr 42 at gens 1 (phase A) and 2 (phase B);
        // consumers holding either generation are coherent.
        let ptr = GPtr::new(0, global_heap::ObjClass(0), 42).bits();
        let mut o1 = clean(0);
        o1.replica_dir = vec![(ptr, 1)];
        let mut o2 = clean(0);
        o2.replica_dir = vec![(ptr, 2)];
        let mut c = clean(1);
        c.replica_held = vec![(ptr, 2)];
        assert!(check_completed(&[o1.clone(), o2.clone(), c], false).is_empty());
        // A generation the owner never published is incoherent — even on
        // a lossy run (faults cannot manufacture a generation).
        let mut bad = clean(1);
        bad.replica_held = vec![(ptr, 7)];
        let v = check_completed(&[o1, o2, bad], true);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::ReplicaIncoherent { node: 1, gen: 7, .. })));
        assert!(v[0].to_string().contains("never published"));
        // A directory claimed by a non-owner does not vouch for anyone.
        let mut imposter = clean(3);
        imposter.replica_dir = vec![(ptr, 9)];
        let mut held = clean(1);
        held.replica_held = vec![(ptr, 9)];
        assert!(check_conservation(&[imposter, held])
            .iter()
            .any(|v| matches!(v, Violation::ReplicaIncoherent { .. })));
    }

    #[test]
    fn lossy_run_tolerates_lost_updates_only() {
        let mut a = clean(0);
        a.updates_applied = 2; // 2 of its 4 emissions were dropped
        let snaps = vec![a, clean(1)];
        assert!(check_completed(&snaps, true).is_empty());
        assert!(check_completed(&snaps, false)
            .iter()
            .any(|v| matches!(v, Violation::UpdateLeak { .. })));
    }
}
