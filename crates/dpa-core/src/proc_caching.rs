//! The software-caching and naive-blocking baseline drivers.
//!
//! These run the *same* pointer-labeled work decomposition as the DPA
//! driver — guaranteeing identical results — but schedule it the way the
//! paper's comparison schemes do:
//!
//! * **Caching** — a sequential traversal per node with a hashed software
//!   cache: every global access pays a probe; a miss sends one request and
//!   *blocks* the node until the reply fills the cache. Reuse happens
//!   (later probes hit), but round trips are fully exposed and messages
//!   never aggregate.
//! * **Blocking** — the same control structure with the cache reduced to a
//!   single entry and free probes: every remote access is an exposed round
//!   trip with no reuse. This is the naive "shared-memory port" lower
//!   bound the paper's introduction motivates against.
//!
//! Both still service incoming requests from other nodes while blocked
//! (the machine would deadlock otherwise), just as the T3D codes answer
//! one-sided gets regardless of what the local CPU is doing.

use crate::config::{DpaConfig, Variant};
use crate::invariant::NodeSnapshot;
use crate::msg::DpaMsg;
use crate::work::{Avail, Emit, PtrApp, Tagged, WorkEnv};
use global_heap::{GPtr, SoftCache};
use sim_net::{Ctx, Dur, NodeId, NodeStats, Proc};
use crate::fxmap::FxHashMap;
use std::collections::HashSet;

struct Stalled<W> {
    iter: u32,
    work: W,
    /// The missed object this node is blocked on. A reply resumes the node
    /// only if it covers this pointer — a duplicated reply for some *other*
    /// object (fault injection) must not resume the wrong work.
    ptr: GPtr,
}

/// A caching/blocking baseline node.
pub struct CachingProc<A: PtrApp> {
    app: A,
    cfg: DpaConfig,
    probe_ns: u64,
    fill_ns: u64,
    stack: Vec<Tagged<A::Work>>,
    /// Emission lists interrupted by a miss, resumed LIFO after the work
    /// stack drains (preserving the depth-first order of a real blocking
    /// traversal).
    cont_stack: Vec<(u32, Vec<Emit<A::Work>>)>,
    cache: SoftCache,
    stalled: Option<Stalled<A::Work>>,
    iter_live: FxHashMap<u32, u32>,
    next_iter: usize,
    total_iters: usize,
    completed_iters: u64,
    request_msgs: u64,
    reply_msgs: u64,
    /// Reply entries served to other nodes (always sent immediately: the
    /// baselines never buffer replies).
    reply_entries: u64,
    /// Update messages sent; doubles as the per-sender update sequence.
    update_msgs: u64,
    updates_emitted: u64,
    updates_applied: u64,
    /// Replies that actually resumed blocked work (duplicates excluded).
    replies_installed: u64,
    /// `(sender, seq)` of Update messages already applied (dedup).
    seen_updates: HashSet<(u16, u64)>,
    stall_count: u64,
    wake_scheduled: bool,
    done: bool,
}

impl<A: PtrApp> CachingProc<A> {
    /// Wrap one node's application instance. Panics unless `cfg.variant`
    /// is [`Variant::Caching`] or [`Variant::Blocking`] and the config
    /// passes [`DpaConfig::validate`].
    pub fn new(app: A, cfg: DpaConfig) -> CachingProc<A> {
        if let Err(e) = cfg.validate() {
            panic!("invalid DpaConfig: {e}");
        }
        let (capacity, probe_ns, fill_ns) = match cfg.variant {
            Variant::Caching => (
                cfg.cache_capacity,
                cfg.cost.cache_probe_ns,
                cfg.cost.cache_fill_ns,
            ),
            // One-entry cache keeps the just-fetched object readable while
            // its dependent work runs, with no reuse beyond that.
            Variant::Blocking => (Some(1), 0, 0),
            v => panic!("CachingProc drives Caching/Blocking, got {v:?}"),
        };
        let policy = cfg.cache_policy;
        let total_iters = app.num_iterations();
        CachingProc {
            app,
            cfg,
            probe_ns,
            fill_ns,
            stack: Vec::new(),
            cont_stack: Vec::new(),
            cache: SoftCache::with_policy(capacity, policy),
            stalled: None,
            iter_live: FxHashMap::default(),
            next_iter: 0,
            total_iters,
            completed_iters: 0,
            request_msgs: 0,
            reply_msgs: 0,
            reply_entries: 0,
            update_msgs: 0,
            updates_emitted: 0,
            updates_applied: 0,
            replies_installed: 0,
            seen_updates: HashSet::new(),
            stall_count: 0,
            wake_scheduled: false,
            done: false,
        }
    }

    /// The wrapped application (post-run inspection).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Completed top-level iterations.
    pub fn completed_iterations(&self) -> u64 {
        self.completed_iters
    }

    /// Export the runtime-state counters the DST invariant checker needs.
    /// The baseline has no M table or coalescers: every request is one
    /// entry on the wire and at most one fetch is outstanding.
    pub fn snapshot(&self, node: u16) -> NodeSnapshot {
        NodeSnapshot {
            node,
            pending_requests: usize::from(self.stalled.is_some()),
            pending_sample: self
                .stalled
                .iter()
                .map(|st| st.ptr.to_string())
                .collect(),
            in_flight: usize::from(self.stalled.is_some()),
            requests_issued: self.request_msgs,
            objects_installed: self.replies_installed,
            req_pushed: self.request_msgs,
            req_sent: self.request_msgs,
            updates_emitted: self.updates_emitted,
            updates_applied: self.updates_applied,
            upd_sent: self.update_msgs,
            reply_pushed: self.reply_entries,
            reply_sent: self.reply_entries,
            request_msgs: self.request_msgs,
            reply_msgs: self.reply_msgs,
            update_msgs: self.update_msgs,
            ..NodeSnapshot::default()
        }
    }

    fn finish_one_work(&mut self, iter: u32) {
        let live = self
            .iter_live
            .get_mut(&iter)
            .expect("finished work for unknown iteration");
        *live -= 1;
        if *live == 0 {
            self.iter_live.remove(&iter);
            self.completed_iters += 1;
        }
    }

    /// Route emissions; returns `false` if a miss stalled the node (the
    /// remaining emissions are saved for resume).
    fn route_emissions(
        &mut self,
        ctx: &mut Ctx<'_, DpaMsg>,
        iter: u32,
        mut emits: Vec<Emit<A::Work>>,
    ) -> bool {
        let me = ctx.me().0;
        // Consume from the back so stack order matches the DPA driver's
        // depth-first order.
        while let Some(e) = emits.pop() {
            if let Emit::Accum(ptr, value) = e {
                // Write-through, unaggregated: the baseline sends each
                // remote reduction as its own message (no batching, no
                // reply); local targets apply in place. Reductions are not
                // threads, so they never enter the live count.
                self.updates_emitted += 1;
                if ptr.is_local_to(me) {
                    ctx.charge_overhead(self.fill_ns);
                    self.updates_applied += 1;
                    self.app.apply_update(ptr, value);
                } else {
                    let seq = self.update_msgs;
                    self.update_msgs += 1;
                    ctx.send(
                        NodeId(ptr.node()),
                        DpaMsg::Update {
                            seq,
                            entries: vec![(ptr, value)],
                        },
                    );
                }
                continue;
            }
            *self.iter_live.entry(iter).or_insert(0) += 1;
            match e {
                Emit::Accum(..) => unreachable!("handled above"),
                Emit::Local(work) => self.stack.push(Tagged { iter, work }),
                Emit::Demand(ptr, work) => {
                    // The baseline hashes on *every* global access, even
                    // ones that turn out local; probes against a populated
                    // table additionally thrash the hardware cache.
                    ctx.charge_overhead(
                        self.probe_ns + self.cfg.cost.probe_thrash_ns(self.cache.len()),
                    );
                    if ptr.is_local_to(me) {
                        self.stack.push(Tagged { iter, work });
                    } else if self.cache.probe(ptr) {
                        // Hit: run this work *before* routing any sibling
                        // that might trigger a fetch — a later fill could
                        // evict the hit object (certain with the blocking
                        // variant's one-entry cache). This is exactly the
                        // depth-first order of a real blocking traversal.
                        self.stack.push(Tagged { iter, work });
                        if !emits.is_empty() {
                            *self.iter_live.entry(iter).or_insert(0) += 1;
                            self.cont_stack.push((iter, emits));
                        }
                        return true;
                    } else {
                        // Miss: one blocking round trip for this object.
                        // The sibling emissions not yet routed resume only
                        // after the blocked work's whole subtree finishes,
                        // as in a real depth-first blocking traversal —
                        // this also guarantees the filled object is still
                        // cached (even with a one-entry cache) when its
                        // dependent work reads it.
                        self.request_msgs += 1;
                        self.stall_count += 1;
                        ctx.send(NodeId(ptr.node()), DpaMsg::Request(vec![ptr]));
                        if !emits.is_empty() {
                            // The stashed continuation counts as one live
                            // unit so its iteration cannot complete early.
                            *self.iter_live.entry(iter).or_insert(0) += 1;
                            self.cont_stack.push((iter, emits));
                        }
                        self.stalled = Some(Stalled { iter, work, ptr });
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Sequential drive: run stack work; admit the next iteration only
    /// when fully drained; stop at a miss.
    fn drive(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        let slice_start = ctx.now();
        let slice = Dur::from_ns(self.cfg.poll_interval_ns);
        loop {
            if self.stalled.is_some() || self.done {
                return;
            }
            if let Some(t) = self.stack.pop() {
                let mut env: WorkEnv<'_, A::Work> =
                    WorkEnv::new(ctx.me().0, ctx.num_nodes(), Avail::Cached(&self.cache));
                self.app.run_work(t.work, &mut env);
                let (ns, emits) = env.finish();
                ctx.charge_local(ns);
                self.route_emissions(ctx, t.iter, emits);
                self.finish_one_work(t.iter);
                if ctx.now().since(slice_start) >= slice {
                    if !self.wake_scheduled {
                        self.wake_scheduled = true;
                        ctx.wake_after(Dur::ZERO);
                    }
                    return;
                }
            } else if let Some((iter, emits)) = self.cont_stack.pop() {
                self.route_emissions(ctx, iter, emits);
                self.finish_one_work(iter); // retire the continuation unit
            } else if self.next_iter < self.total_iters {
                let iter = self.next_iter as u32;
                self.next_iter += 1;
                let mut env: WorkEnv<'_, A::Work> =
                    WorkEnv::new(ctx.me().0, ctx.num_nodes(), Avail::Cached(&self.cache));
                self.app.start_iteration(iter as usize, &mut env);
                let (ns, emits) = env.finish();
                ctx.charge_local(ns);
                self.route_emissions(ctx, iter, emits);
                // An iteration that spawned no threads (nothing, or only
                // reductions) is already complete.
                if !self.iter_live.contains_key(&iter) {
                    self.completed_iters += 1;
                }
            } else {
                debug_assert!(self.iter_live.is_empty());
                debug_assert!(self.cont_stack.is_empty());
                self.done = true;
                return;
            }
        }
    }
}

impl<A: PtrApp> Proc for CachingProc<A> {
    type Msg = DpaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        self.drive(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DpaMsg>, src: NodeId, msg: DpaMsg) {
        match msg {
            DpaMsg::Request(ptrs) => {
                // The baselines never migrate, so no table is passed.
                let acct =
                    crate::owner::service_request(&self.app, &self.cfg, ctx, src, &ptrs, None);
                self.reply_msgs += acct.msgs;
                self.reply_entries += acct.entries;
            }
            DpaMsg::Update { seq, entries } => {
                // Dedup on (sender, seq): duplicated delivery must not
                // fold a reduction in twice.
                if !self.seen_updates.insert((src.0, seq)) {
                    return;
                }
                for (ptr, value) in entries {
                    debug_assert!(ptr.is_local_to(ctx.me().0));
                    ctx.charge_overhead(self.fill_ns);
                    self.updates_applied += 1;
                    self.app.apply_update(ptr, value);
                }
            }
            DpaMsg::Reply(objs) => {
                debug_assert_eq!(objs.len(), 1, "baseline fetches one object at a time");
                for &(ptr, size) in &objs {
                    ctx.charge_overhead(self.fill_ns);
                    self.cache.fill(ptr, size); // idempotent: keeps the first fill
                }
                // Resume only when this reply covers the object we are
                // blocked on. A duplicated reply (fault injection) arrives
                // either while not stalled at all or while blocked on a
                // *different* object; both are ignored — the cache fill
                // above already did any useful work.
                let covers = self
                    .stalled
                    .as_ref()
                    .is_some_and(|st| objs.iter().any(|&(p, _)| p == st.ptr));
                if covers {
                    let st = self.stalled.take().expect("checked above");
                    self.replies_installed += 1;
                    // The blocked work runs immediately (top of the stack)
                    // so the filled object is still cached when read.
                    self.stack.push(Tagged {
                        iter: st.iter,
                        work: st.work,
                    });
                    self.drive(ctx);
                }
            }
            DpaMsg::Affinity { .. }
            | DpaMsg::Migrate { .. }
            | DpaMsg::Forward { .. }
            | DpaMsg::PhaseDelta { .. }
            | DpaMsg::Replicate { .. } => {
                unreachable!("baselines never enable migration, differential, or replication")
            }
        }
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        self.wake_scheduled = false;
        self.drive(ctx);
    }

    fn quiescent(&self) -> bool {
        self.done
    }

    fn stall_detail(&self) -> Option<String> {
        if self.done {
            return None;
        }
        let blocked = match &self.stalled {
            Some(st) => format!("blocked on {} (iter {})", st.ptr, st.iter),
            None => "not blocked".to_string(),
        };
        Some(format!(
            "iters {}/{} done; {blocked}; {} continuations stashed",
            self.completed_iters,
            self.total_iters,
            self.cont_stack.len()
        ))
    }

    fn on_finish(&mut self, stats: &mut NodeStats) {
        let cs = self.cache.stats();
        stats.bump("iterations", self.completed_iters);
        stats.bump("cache_probes", cs.probes);
        stats.bump("cache_hits", cs.hits);
        stats.bump("cache_misses", cs.misses);
        stats.bump("cache_evictions", cs.evictions);
        stats.bump("cache_peak_bytes", self.cache.peak_bytes());
        stats.bump("request_msgs", self.request_msgs);
        stats.bump("reply_msgs", self.reply_msgs);
        stats.bump("reply_entries", self.reply_entries);
        stats.bump("update_msgs", self.update_msgs);
        stats.bump("updates_emitted", self.updates_emitted);
        stats.bump("updates_applied", self.updates_applied);
        stats.bump("stalls", self.stall_count);
    }
}
