//! Wire messages exchanged by the runtime.
//!
//! Two message kinds suffice for the remote-read traffic the paper
//! optimizes: a **request** naming the objects a node wants (8 bytes per
//! pointer) and a **reply** carrying those objects' data. Aggregation shows
//! up as multi-entry requests/replies; the MTU segments outsized replies.

use global_heap::GPtr;
use sim_net::MsgSize;

/// A runtime message.
#[derive(Clone, Debug, PartialEq)]
pub enum DpaMsg {
    /// "Send me these objects." Each entry is a packed global pointer.
    Request(Vec<GPtr>),
    /// "Here they are." Each entry is `(pointer, payload bytes)`; actual
    /// data travels implicitly (single host address space), the byte count
    /// drives wire cost and renamed-storage accounting.
    Reply(Vec<(GPtr, u32)>),
    /// Remote reductions: "fold these values into these objects." The
    /// paper's future-work extension ("more general access patterns, such
    /// as reductions"); commutative-associative, so batching and reorder
    /// are semantics-preserving. No reply: the simulated machine drains
    /// all deliveries before a phase can complete.
    ///
    /// Unlike requests/replies (idempotent via the D table and arrival
    /// set), a re-applied update would corrupt the reduction, so each
    /// carries a per-sender sequence number and receivers deduplicate on
    /// `(sender, seq)` — exactly-once application under at-least-once
    /// delivery. The seq travels in the packet header (no payload cost).
    Update {
        /// Per-sender monotone sequence number (dedup key).
        seq: u64,
        /// The `(pointer, contribution)` entries to fold in.
        entries: Vec<(GPtr, f64)>,
    },
}

impl DpaMsg {
    /// Number of objects named by this message.
    pub fn entries(&self) -> usize {
        match self {
            DpaMsg::Request(v) => v.len(),
            DpaMsg::Reply(v) => v.len(),
            DpaMsg::Update { entries, .. } => entries.len(),
        }
    }
}

impl MsgSize for DpaMsg {
    fn size_bytes(&self) -> u32 {
        match self {
            DpaMsg::Request(v) => (v.len() as u32) * GPtr::WIRE_BYTES,
            DpaMsg::Reply(v) => v
                .iter()
                .map(|&(_, size)| size + GPtr::WIRE_BYTES)
                .sum(),
            DpaMsg::Update { entries, .. } => (entries.len() as u32) * (GPtr::WIRE_BYTES + 8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use global_heap::ObjClass;

    fn p(i: u64) -> GPtr {
        GPtr::new(0, ObjClass(0), i)
    }

    #[test]
    fn request_bytes() {
        let m = DpaMsg::Request(vec![p(1), p(2), p(3)]);
        assert_eq!(m.size_bytes(), 24);
        assert_eq!(m.entries(), 3);
    }

    #[test]
    fn reply_bytes_include_tags() {
        let m = DpaMsg::Reply(vec![(p(1), 96), (p(2), 48)]);
        assert_eq!(m.size_bytes(), 96 + 48 + 16);
        assert_eq!(m.entries(), 2);
    }

    #[test]
    fn empty_messages_are_zero_payload() {
        assert_eq!(DpaMsg::Request(vec![]).size_bytes(), 0);
        assert_eq!(DpaMsg::Reply(vec![]).size_bytes(), 0);
        assert_eq!(
            DpaMsg::Update {
                seq: 0,
                entries: vec![]
            }
            .size_bytes(),
            0
        );
    }

    #[test]
    fn update_bytes_carry_pointer_and_value() {
        let m = DpaMsg::Update {
            seq: 7,
            entries: vec![(p(1), 0.5), (p(2), 1.5)],
        };
        assert_eq!(m.size_bytes(), 2 * 16);
        assert_eq!(m.entries(), 2);
    }

    #[test]
    fn update_seq_rides_in_header() {
        // Same entries, different seq: the wire cost must not change.
        let a = DpaMsg::Update {
            seq: 1,
            entries: vec![(p(1), 0.5)],
        };
        let b = DpaMsg::Update {
            seq: u64::MAX,
            entries: vec![(p(1), 0.5)],
        };
        assert_eq!(a.size_bytes(), b.size_bytes());
    }
}
