//! Wire messages exchanged by the runtime.
//!
//! Two message kinds suffice for the remote-read traffic the paper
//! optimizes: a **request** naming the objects a node wants (8 bytes per
//! pointer) and a **reply** carrying those objects' data. Aggregation shows
//! up as multi-entry requests/replies; the MTU segments outsized replies.

use global_heap::GPtr;
use sim_net::MsgSize;

/// A runtime message.
#[derive(Clone, Debug, PartialEq)]
pub enum DpaMsg {
    /// "Send me these objects." Each entry is a packed global pointer.
    Request(Vec<GPtr>),
    /// "Here they are." Each entry is `(pointer, payload bytes)`; actual
    /// data travels implicitly (single host address space), the byte count
    /// drives wire cost and renamed-storage accounting.
    Reply(Vec<(GPtr, u32)>),
    /// Remote reductions: "fold these values into these objects." The
    /// paper's future-work extension ("more general access patterns, such
    /// as reductions"); commutative-associative, so batching and reorder
    /// are semantics-preserving. No reply: the simulated machine drains
    /// all deliveries before a phase can complete.
    ///
    /// Unlike requests/replies (idempotent via the D table and arrival
    /// set), a re-applied update would corrupt the reduction, so each
    /// carries a per-sender sequence number and receivers deduplicate on
    /// `(sender, seq)` — exactly-once application under at-least-once
    /// delivery. The seq travels in the packet header (no payload cost).
    Update {
        /// Per-sender monotone sequence number (dedup key).
        seq: u64,
        /// The `(pointer, contribution)` entries to fold in.
        entries: Vec<(GPtr, f64)>,
    },
    /// Affinity report: "my threads dereferenced your objects this often."
    /// Sent by a consumer to an object's believed home at each migration
    /// epoch; entries are `(pointer, remote dereference count)` deltas
    /// sampled from the sender's M mapping. Purely advisory (losing one
    /// only weakens the migration signal), but deduplicated on
    /// `(sender, seq)` so duplicated deliveries cannot inflate counts.
    Affinity {
        /// Per-sender monotone sequence number (dedup key).
        seq: u64,
        /// The `(pointer, dereference count)` deltas.
        entries: Vec<(GPtr, u32)>,
    },
    /// Object migration: the owner ships high-affinity objects to their
    /// dominant consumer, which adopts them and serves subsequent reads.
    /// Each entry is `(pointer, payload bytes)` — like a reply, the data
    /// travels implicitly and the size drives wire cost. Adoption must be
    /// exactly-once in effect, so entries dedup on `(sender, seq)` and
    /// adoption itself is idempotent.
    Migrate {
        /// Per-sender monotone sequence number (dedup key).
        seq: u64,
        /// The `(pointer, payload bytes)` objects changing home.
        entries: Vec<(GPtr, u32)>,
    },
    /// One-hop forwarding of a request that reached a birth home after its
    /// object departed: the stub owner passes the wanted pointers to the
    /// new home together with the original requester, which receives the
    /// reply directly. An adopted object never migrates again, so a
    /// request chases at most one `Forward`.
    Forward {
        /// The node whose request hit the forwarding stub (reply target).
        requester: u16,
        /// The departed objects it wants.
        entries: Vec<GPtr>,
    },
    /// Differential re-alignment: at a timestep boundary, an owner tells a
    /// consumer which of the objects the consumer carried across the
    /// barrier have *changed generation* and must be invalidated (and
    /// refetched on next use). An empty entry list is meaningful — it is
    /// the owner's "nothing you hold from me changed" all-clear — so the
    /// consumer gates its first strip on having heard from every home it
    /// carries entries of. Exactly one delta per (owner, consumer) pair
    /// per phase; deduplicated on `(sender, seq)` against duplication
    /// faults.
    PhaseDelta {
        /// Per-sender sequence number (dedup key; header, no payload cost).
        seq: u64,
        /// The carried objects whose generation moved.
        entries: Vec<GPtr>,
    },
    /// Read-mostly replication: the owner pushes generation-stamped copies
    /// of promoted pointers to every node in the consumer set, so
    /// subsequent remote reads hit the local replica with zero messages.
    /// Entries are `(pointer, payload bytes)` — data travels implicitly,
    /// reply-style — and every entry in one message shares the `gen`
    /// stamp. Installation must be idempotent under duplication, so
    /// receivers dedup on `(sender, seq)`; a *lost* broadcast is safe by
    /// construction (the consumer simply fetches on demand, or stalls on
    /// the differential gate — never reads stale data silently).
    Replicate {
        /// Per-sender monotone sequence number (dedup key).
        seq: u64,
        /// Generation stamped on every entry (header, no payload cost).
        gen: u32,
        /// The `(pointer, payload bytes)` copies being pushed.
        entries: Vec<(GPtr, u32)>,
    },
}

impl DpaMsg {
    /// Number of objects named by this message.
    pub fn entries(&self) -> usize {
        match self {
            DpaMsg::Request(v) => v.len(),
            DpaMsg::Reply(v) => v.len(),
            DpaMsg::Update { entries, .. } => entries.len(),
            DpaMsg::Affinity { entries, .. } => entries.len(),
            DpaMsg::Migrate { entries, .. } => entries.len(),
            DpaMsg::Forward { entries, .. } => entries.len(),
            DpaMsg::PhaseDelta { entries, .. } => entries.len(),
            DpaMsg::Replicate { entries, .. } => entries.len(),
        }
    }
}

impl MsgSize for DpaMsg {
    fn size_bytes(&self) -> u32 {
        match self {
            DpaMsg::Request(v) => (v.len() as u32) * GPtr::WIRE_BYTES,
            DpaMsg::Reply(v) => v
                .iter()
                .map(|&(_, size)| size + GPtr::WIRE_BYTES)
                .sum(),
            DpaMsg::Update { entries, .. } => (entries.len() as u32) * (GPtr::WIRE_BYTES + 8),
            // Pointer + 4-byte count per affinity delta; seq in the header.
            DpaMsg::Affinity { entries, .. } => (entries.len() as u32) * (GPtr::WIRE_BYTES + 4),
            // Migration carries the object payload, reply-style.
            DpaMsg::Migrate { entries, .. } => {
                entries.iter().map(|&(_, size)| size + GPtr::WIRE_BYTES).sum()
            }
            // Requester id rides in the header; entries are bare pointers.
            DpaMsg::Forward { entries, .. } => (entries.len() as u32) * GPtr::WIRE_BYTES,
            // Bare pointers; seq in the header. The all-clear (no entries)
            // is a pure header packet.
            DpaMsg::PhaseDelta { entries, .. } => (entries.len() as u32) * GPtr::WIRE_BYTES,
            // A broadcast ships object payloads like a reply; the shared
            // generation stamp rides in the header.
            DpaMsg::Replicate { entries, .. } => {
                entries.iter().map(|&(_, size)| size + GPtr::WIRE_BYTES).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use global_heap::ObjClass;

    fn p(i: u64) -> GPtr {
        GPtr::new(0, ObjClass(0), i)
    }

    #[test]
    fn request_bytes() {
        let m = DpaMsg::Request(vec![p(1), p(2), p(3)]);
        assert_eq!(m.size_bytes(), 24);
        assert_eq!(m.entries(), 3);
    }

    #[test]
    fn reply_bytes_include_tags() {
        let m = DpaMsg::Reply(vec![(p(1), 96), (p(2), 48)]);
        assert_eq!(m.size_bytes(), 96 + 48 + 16);
        assert_eq!(m.entries(), 2);
    }

    #[test]
    fn empty_messages_are_zero_payload() {
        assert_eq!(DpaMsg::Request(vec![]).size_bytes(), 0);
        assert_eq!(DpaMsg::Reply(vec![]).size_bytes(), 0);
        assert_eq!(
            DpaMsg::Update {
                seq: 0,
                entries: vec![]
            }
            .size_bytes(),
            0
        );
    }

    #[test]
    fn update_bytes_carry_pointer_and_value() {
        let m = DpaMsg::Update {
            seq: 7,
            entries: vec![(p(1), 0.5), (p(2), 1.5)],
        };
        assert_eq!(m.size_bytes(), 2 * 16);
        assert_eq!(m.entries(), 2);
    }

    #[test]
    fn migration_messages_size_like_their_payloads() {
        let aff = DpaMsg::Affinity {
            seq: 3,
            entries: vec![(p(1), 17), (p(2), 4)],
        };
        assert_eq!(aff.size_bytes(), 2 * 12, "pointer + count per delta");
        assert_eq!(aff.entries(), 2);

        let mig = DpaMsg::Migrate {
            seq: 1,
            entries: vec![(p(1), 96), (p(2), 48)],
        };
        assert_eq!(
            mig.size_bytes(),
            96 + 48 + 16,
            "migration ships object payloads like a reply"
        );

        let fwd = DpaMsg::Forward {
            requester: 3,
            entries: vec![p(1), p(2), p(3)],
        };
        assert_eq!(fwd.size_bytes(), 24, "forward re-sends bare pointers");
        assert_eq!(fwd.entries(), 3);
    }

    #[test]
    fn phase_delta_bytes() {
        let d = DpaMsg::PhaseDelta {
            seq: 0,
            entries: vec![p(1), p(2)],
        };
        assert_eq!(d.size_bytes(), 16, "bare pointers, seq in the header");
        assert_eq!(d.entries(), 2);
        let all_clear = DpaMsg::PhaseDelta {
            seq: 0,
            entries: vec![],
        };
        assert_eq!(all_clear.size_bytes(), 0, "the all-clear is header-only");
    }

    #[test]
    fn replicate_sizes_like_a_reply_with_header_stamp() {
        let m = DpaMsg::Replicate {
            seq: 2,
            gen: 5,
            entries: vec![(p(1), 96), (p(2), 48)],
        };
        assert_eq!(
            m.size_bytes(),
            96 + 48 + 16,
            "broadcast ships object payloads like a reply"
        );
        assert_eq!(m.entries(), 2);
        // Same entries, different seq/gen: wire cost must not change.
        let n = DpaMsg::Replicate {
            seq: u64::MAX,
            gen: u32::MAX,
            entries: vec![(p(1), 96), (p(2), 48)],
        };
        assert_eq!(m.size_bytes(), n.size_bytes());
    }

    #[test]
    fn update_seq_rides_in_header() {
        // Same entries, different seq: the wire cost must not change.
        let a = DpaMsg::Update {
            seq: 1,
            entries: vec![(p(1), 0.5)],
        };
        let b = DpaMsg::Update {
            seq: u64::MAX,
            entries: vec![(p(1), 0.5)],
        };
        assert_eq!(a.size_bytes(), b.size_bytes());
    }
}
