//! End-to-end driver tests on the synthetic pointer-chasing workload:
//! every execution variant must compute identical checksums, and the
//! performance ordering the paper reports must hold in simulated time.

use dpa_core::synth::{SynthApp, SynthParams, SynthWorld};
use dpa_core::{run_phase, run_phase_faulty, DpaConfig};
use sim_net::NetConfig;
use std::sync::Arc;

fn params(nodes: u16) -> SynthParams {
    SynthParams {
        nodes,
        lists_per_node: 24,
        list_len: 40,
        remote_fraction: 0.35,
        shared_fraction: 0.5,
        record_bytes: 32,
        work_ns: 800,
        seed: 0xFEED,
    }
}

fn total_expected_visits(world: &SynthWorld) -> u64 {
    (0..world.nodes).map(|n| world.expected(n).1).sum()
}

/// Run `cfg` over the synthetic world, returning per-node checksums,
/// visit counts, and the makespan in ns.
fn run(world: &Arc<SynthWorld>, cfg: DpaConfig) -> (Vec<u64>, u64, u64) {
    let mut sums = vec![0u64; world.nodes as usize];
    let mut visited = 0u64;
    let report = run_phase(
        world.nodes,
        NetConfig::default(),
        cfg,
        |i| SynthApp::new(world.clone(), i, 800),
        |i, app| {
            sums[i as usize] = app.sum;
            visited += app.visited;
        },
    );
    (sums, visited, report.makespan().as_ns())
}

#[test]
fn all_variants_compute_identical_sums() {
    let world = SynthWorld::build(params(4));
    let expected: Vec<u64> = (0..4).map(|n| world.expected_sum(n)).collect();
    for cfg in [
        DpaConfig::dpa(8),
        DpaConfig::dpa(1),
        DpaConfig::dpa_base(8),
        DpaConfig::dpa_pipeline(8),
        DpaConfig::caching(),
        DpaConfig::blocking(),
    ] {
        let label = cfg.describe();
        let (sums, visited, _) = run(&world, cfg);
        assert_eq!(sums, expected, "checksum mismatch under {label}");
        assert_eq!(
            visited,
            total_expected_visits(&world),
            "visit count mismatch under {label}"
        );
    }
}

#[test]
fn sequential_reference_matches_on_one_node() {
    let world = SynthWorld::build(params(1));
    let (sums, _, makespan) = run(&world, DpaConfig::sequential());
    assert_eq!(sums[0], world.expected_sum(0));
    // Zero-overhead reference: makespan is exactly visits * work_ns.
    assert_eq!(makespan, world.expected(0).1 * 800);
}

#[test]
fn dpa_beats_caching_beats_blocking() {
    // High-reuse, high-remote workload: caching's reuse must beat
    // blocking's refetching despite per-access probe costs, and DPA must
    // beat both by overlapping and aggregating.
    let world = SynthWorld::build(SynthParams {
        shared_fraction: 0.9,
        remote_fraction: 0.6,
        list_len: 20,
        lists_per_node: 48,
        ..params(8)
    });
    let (_, _, t_dpa) = run(&world, DpaConfig::dpa(16));
    let (_, _, t_cache) = run(&world, DpaConfig::caching());
    let (_, _, t_block) = run(&world, DpaConfig::blocking());
    assert!(
        t_dpa < t_cache,
        "DPA ({t_dpa} ns) must beat caching ({t_cache} ns)"
    );
    assert!(
        t_cache < t_block,
        "caching ({t_cache} ns) must beat blocking ({t_block} ns)"
    );
}

#[test]
fn pipeline_and_aggregation_each_help() {
    let world = SynthWorld::build(params(8));
    let (_, _, t_base) = run(&world, DpaConfig::dpa_base(16));
    let (_, _, t_pipe) = run(&world, DpaConfig::dpa_pipeline(16));
    let (_, _, t_full) = run(&world, DpaConfig::dpa(16));
    assert!(
        t_pipe < t_base,
        "pipelining ({t_pipe}) must beat Base ({t_base})"
    );
    assert!(
        t_full < t_pipe,
        "aggregation ({t_full}) must further beat pipeline-only ({t_pipe})"
    );
}

#[test]
fn runs_are_deterministic() {
    let world = SynthWorld::build(params(4));
    let (s1, _, t1) = run(&world, DpaConfig::dpa(8));
    let (s2, _, t2) = run(&world, DpaConfig::dpa(8));
    assert_eq!(s1, s2);
    assert_eq!(t1, t2);
}

#[test]
fn strip_one_still_correct_but_slower() {
    let world = SynthWorld::build(params(4));
    let (_, _, t1) = run(&world, DpaConfig::dpa(1));
    let (_, _, t16) = run(&world, DpaConfig::dpa(16));
    assert!(
        t16 < t1,
        "a wider strip ({t16}) must beat strip=1 ({t1}): no overlap possible at k=1"
    );
}

/// A dangling forwarding stub — departed at the owner, never adopted at
/// the target (its `Migrate` was dropped or still parked at the barrier) —
/// is completed offline by the boundary healer, and healing again is a
/// no-op. This is the idempotence that keeps a single lost shipment from
/// turning into a permanent forward-and-park stall in every later phase.
#[test]
fn heal_departed_orphans_completes_dangling_stubs() {
    use dpa_core::heal_departed_orphans;
    use global_heap::{GPtr, MigrationTable, ObjClass};

    let orphan = GPtr::new(0, ObjClass(0), 7);
    let clean = GPtr::new(0, ObjClass(0), 9);
    let mut tables = vec![MigrationTable::new(); 3];
    // A clean hand-off: stub and adoption both present.
    tables[0].depart(clean, 1);
    tables[1].adopt(clean, 64);
    // The orphan: stub installed, shipment lost before node 2 adopted.
    tables[0].depart(orphan, 2);

    let healed = heal_departed_orphans(&mut tables, |_| 48);
    assert_eq!(healed, vec![orphan], "only the dangling stub needs healing");
    assert!(tables[2].is_adopted(orphan));
    assert_eq!(tables[2].adopted_size(orphan), Some(48));
    assert_eq!(
        tables[1].adopted_size(clean),
        Some(64),
        "the clean hand-off is untouched"
    );

    let again = heal_departed_orphans(&mut tables, |_| 48);
    assert!(again.is_empty(), "healing must be idempotent");
}

/// Two owners with stubs pointing at the same adoptive node heal in
/// deterministic order (owners ascending, pointers by bits within one
/// owner) — the boundary pass must not depend on hash-map iteration.
#[test]
fn heal_departed_orphans_is_deterministic() {
    use dpa_core::heal_departed_orphans;
    use global_heap::{GPtr, MigrationTable, ObjClass};

    let build = || {
        let mut tables = vec![MigrationTable::new(); 4];
        for idx in [12u64, 3, 44, 8] {
            tables[1].depart(GPtr::new(1, ObjClass(0), idx), 3);
        }
        tables[0].depart(GPtr::new(0, ObjClass(0), 5), 3);
        tables
    };
    let mut a = build();
    let mut b = build();
    let ha = heal_departed_orphans(&mut a, |p| 16 + p.index() as u32);
    let hb = heal_departed_orphans(&mut b, |p| 16 + p.index() as u32);
    assert_eq!(ha, hb, "healing order must be deterministic");
    assert_eq!(ha.len(), 5);
    assert!(ha[0].node() == 0, "owners heal in ascending node order");
}

#[test]
fn dropped_replies_stall_but_do_not_hang() {
    let world = SynthWorld::build(params(4));
    let net = NetConfig {
        drop_every: Some(5),
        ..NetConfig::default()
    };
    let report = run_phase_faulty(
        4,
        net,
        DpaConfig::dpa(8),
        |i| SynthApp::new(world.clone(), i, 800),
        |_, _| {},
    );
    assert!(!report.completed, "lost packets must be detected as a stall");
    assert!(report.stats.dropped_packets > 0);
}

#[test]
fn message_counts_shrink_with_aggregation() {
    let world = SynthWorld::build(params(8));
    let mut msgs_noagg = 0;
    let mut msgs_agg = 0;
    let r1 = run_phase(
        8,
        NetConfig::default(),
        DpaConfig::dpa_pipeline(16),
        |i| SynthApp::new(world.clone(), i, 800),
        |_, _| {},
    );
    msgs_noagg += r1.stats.total_msgs();
    let r2 = run_phase(
        8,
        NetConfig::default(),
        DpaConfig::dpa(16),
        |i| SynthApp::new(world.clone(), i, 800),
        |_, _| {},
    );
    msgs_agg += r2.stats.total_msgs();
    assert!(
        msgs_agg < msgs_noagg,
        "aggregation must reduce message count ({msgs_agg} vs {msgs_noagg})"
    );
}

#[test]
fn oversized_objects_segment_replies_at_the_mtu() {
    // Records far larger than the 2 KiB MTU: aggregated replies must be
    // split into multiple packets, yet every variant still agrees.
    let world = SynthWorld::build(SynthParams {
        record_bytes: 5_000,
        ..params(4)
    });
    let expected: Vec<u64> = (0..4).map(|n| world.expected_sum(n)).collect();
    let mut sums = vec![0u64; 4];
    let report = run_phase(
        4,
        NetConfig::default(),
        DpaConfig::dpa(16),
        |i| SynthApp::new(world.clone(), i, 800),
        |i, app| sums[i as usize] = app.sum,
    );
    assert_eq!(sums, expected);
    let s = &report.stats;
    // One object per reply at most (5000 + 8 > 2048): replies >= objects.
    assert!(
        s.user_total("reply_msgs") >= s.user_total("requests_issued"),
        "replies {} vs objects {}",
        s.user_total("reply_msgs"),
        s.user_total("requests_issued")
    );
    // Every oversized reply is alone in its packet, so reply messages
    // can never be fewer than the request messages that asked for them.
    assert!(s.user_total("reply_msgs") >= s.user_total("request_msgs"));
}

#[test]
fn oversized_objects_pay_multi_packet_cost() {
    // A single object larger than the MTU cannot be segmented across
    // reply entries, so the owner must be charged for every extra packet
    // it occupies. Run the same world under a small and a large MTU:
    // with 5000-byte records and a 2 KiB MTU each reply spans 3 packets;
    // with an 8 KiB MTU it fits in one. Identical results, but the
    // small-MTU run must charge strictly more send overhead.
    let world = SynthWorld::build(SynthParams {
        record_bytes: 5_000,
        ..params(4)
    });
    let expected: Vec<u64> = (0..4).map(|n| world.expected_sum(n)).collect();
    let run_with_mtu = |mtu: u32| {
        let mut sums = vec![0u64; 4];
        let cfg = DpaConfig {
            mtu: fastmsg::Mtu::new(mtu),
            ..DpaConfig::dpa(16)
        };
        let report = run_phase(
            4,
            NetConfig::default(),
            cfg,
            |i| SynthApp::new(world.clone(), i, 800),
            |i, app| sums[i as usize] = app.sum,
        );
        assert_eq!(sums, expected);
        report.stats.sum(|s| s.overhead.as_ns())
    };
    let overhead_small_mtu = run_with_mtu(2_048);
    let overhead_large_mtu = run_with_mtu(8_192);
    assert!(
        overhead_small_mtu > overhead_large_mtu,
        "3-packet replies must charge more overhead than 1-packet ones \
         ({overhead_small_mtu} vs {overhead_large_mtu})"
    );
}

#[test]
fn reply_aggregation_coalesces_replies_and_preserves_results() {
    // With the owner-side reply scheduler on, busy owners answer several
    // request batches from the same destination in fewer messages; the
    // computed checksums are untouched.
    let world = SynthWorld::build(SynthParams {
        remote_fraction: 0.6,
        ..params(8)
    });
    let expected: Vec<u64> = (0..8).map(|n| world.expected_sum(n)).collect();
    let run_with = |reply_agg_window: usize| {
        let mut sums = vec![0u64; 8];
        let cfg = DpaConfig {
            reply_agg_window,
            ..DpaConfig::dpa(16)
        };
        let report = run_phase(
            8,
            NetConfig::default(),
            cfg,
            |i| SynthApp::new(world.clone(), i, 800),
            |i, app| sums[i as usize] = app.sum,
        );
        assert_eq!(sums, expected);
        (
            report.stats.user_total("reply_msgs"),
            report.stats.user_ratio("reply_entries", "reply_msgs"),
        )
    };
    let (msgs_off, factor_off) = run_with(1);
    let (msgs_on, factor_on) = run_with(32);
    assert!(
        msgs_on < msgs_off,
        "reply aggregation must reduce reply messages ({msgs_on} vs {msgs_off})"
    );
    assert!(
        factor_on > factor_off,
        "reply aggregation factor must grow ({factor_on:.2} vs {factor_off:.2})"
    );
}

#[test]
fn flow_control_bounds_in_flight_requests() {
    let world = SynthWorld::build(SynthParams {
        remote_fraction: 0.6,
        ..params(8)
    });
    let expected: Vec<u64> = (0..8).map(|n| world.expected_sum(n)).collect();
    let run_with = |max: usize| {
        let mut sums = vec![0u64; 8];
        let cfg = DpaConfig {
            max_outstanding: max,
            ..DpaConfig::dpa(16)
        };
        let report = run_phase(
            8,
            NetConfig::default(),
            cfg,
            |i| SynthApp::new(world.clone(), i, 800),
            |i, app| sums[i as usize] = app.sum,
        );
        (sums, report)
    };
    let (sums, bounded) = run_with(4);
    assert_eq!(sums, expected, "flow control must not change results");
    // The cap holds: one over-full batch may exceed it transiently, so
    // allow the window size as slack.
    let peak = bounded.stats.user_max("peak_in_flight");
    assert!(peak <= 4 + 32, "peak in-flight {peak} exceeds cap + window");
    let (_, unbounded) = run_with(usize::MAX);
    assert!(
        unbounded.stats.user_max("peak_in_flight") >= peak,
        "the cap can only lower the in-flight peak"
    );
    // Note: throttling is not monotonically slower — deferring sends can
    // fill batches further and *reduce* messages — so only correctness
    // and the peak bound are asserted.
    assert!(bounded.completed && unbounded.completed);
}

#[test]
fn bounded_lru_cache_still_correct() {
    use global_heap::EvictPolicy;
    let world = SynthWorld::build(SynthParams {
        remote_fraction: 0.5,
        shared_fraction: 0.7,
        ..params(4)
    });
    let expected: Vec<u64> = (0..4).map(|n| world.expected_sum(n)).collect();
    for (capacity, policy) in [
        (Some(16), EvictPolicy::Fifo),
        (Some(16), EvictPolicy::Lru),
        (Some(2), EvictPolicy::Lru),
    ] {
        let cfg = DpaConfig {
            cache_capacity: capacity,
            cache_policy: policy,
            ..DpaConfig::caching()
        };
        let mut sums = vec![0u64; 4];
        run_phase(
            4,
            NetConfig::default(),
            cfg,
            |i| SynthApp::new(world.clone(), i, 800),
            |i, app| sums[i as usize] = app.sum,
        );
        assert_eq!(sums, expected, "{capacity:?}/{policy:?}");
    }
}

#[test]
fn zero_iteration_nodes_are_fine() {
    // A world where some nodes own no lists at all.
    let world = SynthWorld::build(SynthParams {
        nodes: 3,
        lists_per_node: 4,
        ..params(3)
    });
    // Node indices above the world's size own nothing; run on 6 nodes
    // with apps that report zero iterations for the extra nodes.
    let mut sum = 0u64;
    let report = run_phase(
        3,
        NetConfig::default(),
        DpaConfig::dpa(4),
        |i| SynthApp::new(world.clone(), i, 800),
        |_, app| sum = sum.wrapping_add(app.sum),
    );
    assert!(report.completed);
    let expected: u64 = (0..3).map(|n| world.expected_sum(n)).sum();
    assert_eq!(sum, expected);
}

#[test]
fn thread_statistics_are_flushed() {
    let world = SynthWorld::build(params(4));
    let report = run_phase(
        4,
        NetConfig::default(),
        DpaConfig::dpa(8),
        |i| SynthApp::new(world.clone(), i, 800),
        |_, _| {},
    );
    let s = &report.stats;
    assert_eq!(s.user_total("iterations"), 4 * 24);
    assert!(s.user_total("threads_created") >= world.total_records() as u64);
    assert!(s.user_max("peak_aligned_threads") > 0);
    assert!(s.user_total("requests_issued") > 0);
    assert!(s.user_total("renamed_peak_bytes") > 0);
}

#[test]
fn caching_statistics_are_flushed() {
    let world = SynthWorld::build(params(4));
    let report = run_phase(
        4,
        NetConfig::default(),
        DpaConfig::caching(),
        |i| SynthApp::new(world.clone(), i, 800),
        |_, _| {},
    );
    let s = &report.stats;
    assert_eq!(s.user_total("iterations"), 4 * 24);
    assert!(s.user_total("cache_probes") > 0);
    assert_eq!(
        s.user_total("cache_misses"),
        s.user_total("stalls"),
        "every miss stalls exactly once"
    );
}
