//! Recursive-descent parser for Mini-ICC.

use crate::ast::*;
use crate::lexer::{lex, Spanned, SyntaxError, Tok};

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Parse a full program from source text.
pub fn parse(src: &str) -> Result<Program, SyntaxError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut prog = Program::default();
    loop {
        match p.peek() {
            Tok::Kw("struct") => prog.structs.push(p.struct_decl()?),
            Tok::Kw("fn") => prog.funcs.push(p.fn_decl()?),
            Tok::Eof => break,
            t => return Err(p.err(format!("expected `struct` or `fn`, found {t}"))),
        }
    }
    Ok(prog)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn err(&self, msg: String) -> SyntaxError {
        SyntaxError {
            msg,
            line: self.line(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), SyntaxError> {
        match self.bump() {
            Tok::Punct(q) if q == p => Ok(()),
            t => Err(self.err(format!("expected `{p}`, found {t}"))),
        }
    }

    fn expect_kw(&mut self, k: &'static str) -> Result<(), SyntaxError> {
        match self.bump() {
            Tok::Kw(q) if q == k => Ok(()),
            t => Err(self.err(format!("expected `{k}`, found {t}"))),
        }
    }

    fn ident(&mut self) -> Result<String, SyntaxError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            t => Err(self.err(format!("expected identifier, found {t}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ty(&mut self) -> Result<Ty, SyntaxError> {
        match self.bump() {
            Tok::Kw("int") => Ok(Ty::Int),
            Tok::Kw("float") => Ok(Ty::Float),
            Tok::Ident(name) => {
                self.expect_punct("*")?;
                Ok(Ty::Ptr(name))
            }
            t => Err(self.err(format!("expected a type, found {t}"))),
        }
    }

    fn struct_decl(&mut self) -> Result<StructDecl, SyntaxError> {
        self.expect_kw("struct")?;
        let name = self.ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            let fname = self.ident()?;
            self.expect_punct(":")?;
            let ty = self.ty()?;
            self.expect_punct(";")?;
            fields.push(Field { name: fname, ty });
        }
        Ok(StructDecl { name, fields })
    }

    fn fn_decl(&mut self) -> Result<FnDecl, SyntaxError> {
        self.expect_kw("fn")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pname = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.ty()?;
                params.push(Field { name: pname, ty });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let ret = if self.eat_punct("-") {
            // tolerate `- >`? No: `->` is a single token; handle below.
            return Err(self.err("expected `->` or `{`".into()));
        } else if matches!(self.peek(), Tok::Punct("->")) {
            self.bump();
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            ret,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, SyntaxError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, SyntaxError> {
        match self.peek().clone() {
            Tok::Kw("let") => {
                self.bump();
                let name = self.ident()?;
                self.expect_punct(":")?;
                let ty = self.ty()?;
                self.expect_punct("=")?;
                let value = self.expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Let { name, ty, value })
            }
            Tok::Kw("return") => {
                self.bump();
                if self.eat_punct(";") {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::Kw("if") => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then_blk = self.block()?;
                let else_blk = if matches!(self.peek(), Tok::Kw("else")) {
                    self.bump();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            Tok::Kw("while") => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw("conc") => {
                self.bump();
                if matches!(self.peek(), Tok::Kw("for")) {
                    self.bump();
                    self.expect_punct("(")?;
                    let var = self.ident()?;
                    self.expect_punct("=")?;
                    let lo = self.expr()?;
                    self.expect_punct(";")?;
                    let v2 = self.ident()?;
                    if v2 != var {
                        return Err(self.err(format!(
                            "conc for: condition must test `{var}`, found `{v2}`"
                        )));
                    }
                    self.expect_punct("<")?;
                    let hi = self.expr()?;
                    self.expect_punct(";")?;
                    // Only unit stride: `i = i + 1`.
                    let v3 = self.ident()?;
                    self.expect_punct("=")?;
                    let step = self.expr()?;
                    let unit = Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Var(var.clone())),
                        Box::new(Expr::Int(1)),
                    );
                    if v3 != var || step != unit {
                        return Err(self.err(format!(
                            "conc for: only `{var} = {var} + 1` strides are supported"
                        )));
                    }
                    self.expect_punct(")")?;
                    let body = self.block()?;
                    Ok(Stmt::ConcFor { var, lo, hi, body })
                } else {
                    Ok(Stmt::Conc(self.block()?))
                }
            }
            Tok::Ident(name) => {
                // Lookahead for `name = expr;` vs expression statement.
                if matches!(&self.toks[self.pos + 1].tok, Tok::Punct("=")) {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Assign { name, value })
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Expr(e))
                }
            }
            t => Err(self.err(format!("expected a statement, found {t}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, SyntaxError> {
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SyntaxError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Tok::Punct("==") => Some(BinOp::Eq),
            Tok::Punct("!=") => Some(BinOp::Ne),
            Tok::Punct("<") => Some(BinOp::Lt),
            Tok::Punct("<=") => Some(BinOp::Le),
            Tok::Punct(">") => Some(BinOp::Gt),
            Tok::Punct(">=") => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn additive(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, SyntaxError> {
        let mut lhs = self.postfix()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.postfix()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn postfix(&mut self) -> Result<Expr, SyntaxError> {
        let mut e = self.primary()?;
        while matches!(self.peek(), Tok::Punct("->")) {
            self.bump();
            let field = self.ident()?;
            e = Expr::FieldRead {
                base: Box::new(e),
                field,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, SyntaxError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Kw("null") => Ok(Expr::Null),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call { func: name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            t => Err(self.err(format!("expected an expression, found {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_struct_and_fn() {
        let p = parse(
            "struct Node { val: int; next: Node*; }
             fn sum(n: Node*) -> int {
               if (n == null) { return 0; }
               let v: int = n->val;
               let rest: int = sum(n->next);
               return v + rest;
             }",
        )
        .unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
        let f = &p.funcs[0];
        assert_eq!(f.name, "sum");
        assert_eq!(f.ret, Some(Ty::Int));
        assert_eq!(f.body.len(), 4);
    }

    #[test]
    fn parse_conc_block() {
        let p = parse(
            "fn f(a: T*) {
               conc {
                 g(a);
                 g(a);
               }
             }",
        )
        .unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Conc(stmts) => assert_eq!(stmts.len(), 2),
            other => panic!("expected conc, got {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let p = parse("fn f() -> int { return 1 + 2 * 3; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(Expr::Bin(BinOp::Add, _, rhs))) => {
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chained_field_reads() {
        let p = parse("fn f(n: Node*) -> int { return n->next->val; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(Expr::FieldRead { base, field })) => {
                assert_eq!(field, "val");
                assert!(matches!(**base, Expr::FieldRead { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_and_assign() {
        let p = parse(
            "fn f(n: Node*) -> int {
               let acc: int = 0;
               while (n != null) {
                 acc = acc + n->val;
                 n = n->next;
               }
               return acc;
             }",
        )
        .unwrap();
        assert!(matches!(p.funcs[0].body[1], Stmt::While { .. }));
    }

    #[test]
    fn conc_for_parses() {
        let p = parse(
            "fn g(i: int) -> int { return i; }
             fn k(n: int) { conc for (i = 0; i < n; i = i + 1) { g(i); } }",
        )
        .unwrap();
        assert!(matches!(p.funcs[1].body[0], Stmt::ConcFor { .. }));
    }

    #[test]
    fn conc_for_rejects_bad_stride() {
        let e = parse("fn k(n: int) { conc for (i = 0; i < n; i = i + 2) { k(n); } }")
            .unwrap_err();
        assert!(e.msg.contains("strides"), "{e}");
    }

    #[test]
    fn conc_for_rejects_mismatched_vars() {
        let e = parse("fn k(n: int) { conc for (i = 0; j < n; i = i + 1) { k(n); } }")
            .unwrap_err();
        assert!(e.msg.contains("condition must test"), "{e}");
    }

    #[test]
    fn error_reports_line() {
        let e = parse("fn f() {\n let = 3;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
