//! The interpreter's global object space: distributed Mini-ICC objects.
//!
//! Kernel programs operate over a pre-built pointer structure (just as the
//! paper's force phases walk an already-built tree). The builder API
//! allocates objects on chosen owner nodes, wires pointer fields, and
//! registers per-node kernel invocations (the top-level concurrent loop's
//! iteration space, which the runtime strip-mines).

use crate::program::{CompiledProgram, TId, Value};
use global_heap::{ClassTable, GPtr, ObjClass};
use std::sync::Arc;

/// A built, immutable world: compiled program + object arenas + roots.
pub struct IccWorld {
    /// The compiled program.
    pub program: CompiledProgram,
    /// Object payloads: `objects[class][index]` = field values.
    objects: Vec<Vec<Vec<Value>>>,
    /// Transfer-size table per class.
    pub classes: ClassTable,
    /// Per-node kernel invocations: argument vectors.
    roots: Vec<Vec<Vec<Value>>>,
    /// Kernel entry template.
    pub kernel_entry: TId,
    /// Machine size.
    pub nodes: u16,
    /// ns charged per interpreted op.
    pub op_ns: u64,
}

impl IccWorld {
    /// Read field `field` of the object at `ptr`.
    #[inline]
    pub fn field(&self, ptr: GPtr, field: u16) -> Value {
        self.objects[ptr.class().0 as usize][ptr.index() as usize][field as usize]
    }

    /// Number of kernel invocations node `node` owns.
    pub fn roots_of(&self, node: u16) -> &[Vec<Value>] {
        &self.roots[node as usize]
    }

    /// Total objects across all classes.
    pub fn total_objects(&self) -> usize {
        self.objects.iter().map(Vec::len).sum()
    }
}

/// Mutable builder for an [`IccWorld`].
pub struct IccWorldBuilder {
    program: CompiledProgram,
    objects: Vec<Vec<Vec<Value>>>,
    owners: Vec<Vec<u16>>,
    classes: ClassTable,
    roots: Vec<Vec<Vec<Value>>>,
    nodes: u16,
    kernel_entry: TId,
    kernel_arity: usize,
    /// ns charged per interpreted op (default 45 ≈ a few cycles each on a
    /// 150 MHz node).
    pub op_ns: u64,
}

impl IccWorldBuilder {
    /// Start building a world for `nodes` nodes running `kernel` (a
    /// function of the compiled program) once per root.
    ///
    /// Panics if `kernel` is not a function of `program`.
    pub fn new(program: CompiledProgram, kernel: &str, nodes: u16) -> IccWorldBuilder {
        let (kernel_entry, kernel_arity, _) = program
            .function(kernel)
            .unwrap_or_else(|| panic!("kernel function `{kernel}` not found"));
        let mut classes = ClassTable::new();
        for s in &program.structs {
            // Leak is fine: a handful of struct names per program, and
            // ClassTable requires 'static names.
            let name: &'static str = Box::leak(s.name.clone().into_boxed_str());
            classes.register(name, s.size_bytes());
        }
        let nclasses = program.structs.len();
        IccWorldBuilder {
            program,
            objects: vec![Vec::new(); nclasses],
            owners: vec![Vec::new(); nclasses],
            classes,
            roots: vec![Vec::new(); nodes as usize],
            nodes,
            kernel_entry,
            kernel_arity,
            op_ns: 45,
        }
    }

    /// Allocate an object of struct `sname` on `owner` with the given
    /// field values (must match the declared field count). Returns its
    /// global pointer.
    pub fn alloc(&mut self, owner: u16, sname: &str, fields: Vec<Value>) -> GPtr {
        assert!(owner < self.nodes);
        let class = self
            .program
            .struct_class(sname)
            .unwrap_or_else(|| panic!("unknown struct `{sname}`"));
        let layout = &self.program.structs[class as usize];
        assert_eq!(
            fields.len(),
            layout.fields.len(),
            "field count mismatch for `{sname}`"
        );
        let idx = self.objects[class as usize].len() as u64;
        self.objects[class as usize].push(fields);
        self.owners[class as usize].push(owner);
        GPtr::new(owner, ObjClass(class), idx)
    }

    /// Overwrite a field of an existing object (for wiring cycles/links
    /// after allocation).
    pub fn set_field(&mut self, ptr: GPtr, field: &str, value: Value) {
        let class = ptr.class().0 as usize;
        let layout = &self.program.structs[class];
        let fi = layout
            .fields
            .iter()
            .position(|f| f == field)
            .unwrap_or_else(|| panic!("struct `{}` has no field `{field}`", layout.name));
        self.objects[class][ptr.index() as usize][fi] = value;
    }

    /// Register one kernel invocation `kernel(args…)` on `node`.
    pub fn add_root(&mut self, node: u16, args: Vec<Value>) {
        assert!(node < self.nodes);
        assert_eq!(args.len(), self.kernel_arity, "kernel arity mismatch");
        self.roots[node as usize].push(args);
    }

    /// Finish building.
    pub fn build(self) -> Arc<IccWorld> {
        Arc::new(IccWorld {
            program: self.program,
            objects: self.objects,
            classes: self.classes,
            roots: self.roots,
            kernel_entry: self.kernel_entry,
            nodes: self.nodes,
            op_ns: self.op_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn program() -> CompiledProgram {
        compile(
            &parse(
                "struct Node { val: int; next: Node*; }
                 fn sum(n: Node*) -> int {
                   if (n == null) { return 0; }
                   let rest: int = sum(n->next);
                   return rest + n->val;
                 }",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn alloc_and_read() {
        let mut b = IccWorldBuilder::new(program(), "sum", 2);
        let tail = b.alloc(1, "Node", vec![Value::Int(7), Value::Ptr(GPtr::NULL)]);
        let head = b.alloc(0, "Node", vec![Value::Int(3), Value::Ptr(tail)]);
        b.add_root(0, vec![Value::Ptr(head)]);
        let w = b.build();
        assert_eq!(w.field(head, 0), Value::Int(3));
        assert_eq!(w.field(head, 1), Value::Ptr(tail));
        assert_eq!(w.total_objects(), 2);
        assert_eq!(w.roots_of(0).len(), 1);
        assert_eq!(w.roots_of(1).len(), 0);
    }

    #[test]
    fn set_field_rewires() {
        let mut b = IccWorldBuilder::new(program(), "sum", 1);
        let a = b.alloc(0, "Node", vec![Value::Int(1), Value::Ptr(GPtr::NULL)]);
        let c = b.alloc(0, "Node", vec![Value::Int(2), Value::Ptr(GPtr::NULL)]);
        b.set_field(a, "next", Value::Ptr(c));
        let w = b.build();
        assert_eq!(w.field(a, 1), Value::Ptr(c));
    }

    #[test]
    #[should_panic(expected = "kernel arity mismatch")]
    fn root_arity_checked() {
        let mut b = IccWorldBuilder::new(program(), "sum", 1);
        b.add_root(0, vec![]);
    }

    #[test]
    #[should_panic(expected = "no field")]
    fn bad_field_name_panics() {
        let mut b = IccWorldBuilder::new(program(), "sum", 1);
        let a = b.alloc(0, "Node", vec![Value::Int(1), Value::Ptr(GPtr::NULL)]);
        b.set_field(a, "bogus", Value::Int(0));
    }
}
