//! Hand-written lexer for Mini-ICC.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword-candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// A keyword (`struct`, `fn`, `let`, `if`, `else`, `while`, `conc`,
    /// `for`, `return`, `null`, `int`, `float`).
    Kw(&'static str),
    /// A punctuation/operator token, e.g. `->`, `==`, `{`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Float(v) => write!(f, "float `{v}`"),
            Tok::Kw(k) => write!(f, "keyword `{k}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "struct", "fn", "let", "if", "else", "while", "conc", "for", "return", "null", "int",
    "float",
];

/// A token plus its line number (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexing or parsing error.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntaxError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for SyntaxError {}

/// Tokenize `src`. `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, SyntaxError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &src[start..i];
            let tok = match KEYWORDS.iter().find(|&&k| k == word) {
                Some(&k) => Tok::Kw(k),
                None => Tok::Ident(word.to_string()),
            };
            out.push(Spanned { tok, line });
        } else if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i + 1 < bytes.len()
                && bytes[i] == b'.'
                && (bytes[i + 1] as char).is_ascii_digit()
            {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &src[start..i];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| SyntaxError {
                    msg: format!("bad float literal `{text}`"),
                    line,
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| SyntaxError {
                    msg: format!("bad integer literal `{text}`"),
                    line,
                })?)
            };
            out.push(Spanned { tok, line });
        } else {
            // Two-character operators first.
            let two = if i + 1 < bytes.len() { &src[i..i + 2] } else { "" };
            let punct2 = ["->", "==", "!=", "<=", ">="]
                .iter()
                .find(|&&p| p == two)
                .copied();
            if let Some(p) = punct2 {
                out.push(Spanned {
                    tok: Tok::Punct(p),
                    line,
                });
                i += 2;
                continue;
            }
            let one = ["{", "}", "(", ")", ";", ":", ",", "=", "+", "-", "*", "/", "%", "<", ">"]
                .iter()
                .find(|&&p| p == &src[i..i + 1])
                .copied();
            match one {
                Some(p) => {
                    out.push(Spanned {
                        tok: Tok::Punct(p),
                        line,
                    });
                    i += 1;
                }
                None => {
                    return Err(SyntaxError {
                        msg: format!("unexpected character `{c}`"),
                        line,
                    })
                }
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("struct Node fn walk"),
            vec![
                Tok::Kw("struct"),
                Tok::Ident("Node".into()),
                Tok::Kw("fn"),
                Tok::Ident("walk".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5"),
            vec![Tok::Int(42), Tok::Float(3.5), Tok::Eof]
        );
    }

    #[test]
    fn arrow_and_comparisons() {
        assert_eq!(
            toks("a->b <= c == d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("->"),
                Tok::Ident("b".into()),
                Tok::Punct("<="),
                Tok::Ident("c".into()),
                Tok::Punct("=="),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(
            toks("a - b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("-"),
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_lines_counted() {
        let s = lex("a // comment\nb").unwrap();
        assert_eq!(s[0].line, 1);
        assert_eq!(s[1].line, 2);
    }

    #[test]
    fn bad_char_reports_line() {
        let e = lex("a\n$").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains('$'));
    }
}
