//! The thread partitioner — the compiler half of DPA.
//!
//! Lowers each Mini-ICC function into non-blocking thread templates,
//! implementing the paper's Section 3–4 pipeline on a small scale:
//!
//! * **Alias classes** — coarse-grained: every value of struct-pointer
//!   type is *global* (potentially remote); ints/floats are local. The
//!   paper found coarse aliasing sufficient to enable the optimizations.
//! * **Touch splitting** — a dereference `e->f` of a global pointer ends
//!   the current thread with a [`Term::Demand`] labeled by the pointer;
//!   the continuation thread begins when the object is available.
//! * **Access hoisting** — the continuation immediately loads *every*
//!   field of the touched object into registers, so later `e->g` reads in
//!   the same thread are register moves, not new touches ("our use of
//!   aliasing to hoist data accesses enables larger threads").
//! * **Function promotion** — a call becomes a child-thread spawn with an
//!   explicit continuation ([`Term::Call`]), since the callee may block
//!   on touches internally.
//! * **`conc` blocks** — lower to [`Term::Fork`]: children execute in any
//!   interleaving and join before the continuation.
//!
//! Top-level loop strip-mining is performed by the runtime's k-bounded
//! admission (the compiler's iteration space is the root set handed to
//! the interpreter).

use crate::ast::*;
use crate::program::*;
use std::collections::HashMap;
use std::fmt;

/// A compilation error (unknown names, misplaced calls, arity…).
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.msg)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError { msg: msg.into() })
}

#[derive(Clone, Debug)]
struct ScopeVar {
    name: String,
    reg: Reg,
    /// `Some(struct)` when this is a global pointer.
    ptr_struct: Option<String>,
}

struct Lower<'p> {
    templates: &'p mut Vec<Template>,
    fns: &'p HashMap<String, (TId, usize, bool)>,
    structs: &'p HashMap<String, Vec<Field>>,
    fn_name: String,
    cur: TId,
    ops: Vec<Op>,
    next_reg: Reg,
    scope: Vec<ScopeVar>,
    /// Temporaries that must survive template splits, with their pointer
    /// struct (for later derefs).
    protected: Vec<(Reg, Option<String>)>,
    /// reg → field → (reg, ptr_struct): hoisted loads valid within the
    /// current template chain segment.
    hoisted: HashMap<Reg, HashMap<String, (Reg, Option<String>)>>,
    demand_sites: u32,
    fork_sites: u32,
    call_sites: u32,
    templates_made: u32,
    /// Current control path ended with `return`.
    done: bool,
}

fn ptr_struct_of(ty: &Ty) -> Option<String> {
    match ty {
        Ty::Ptr(s) => Some(s.clone()),
        _ => None,
    }
}

impl<'p> Lower<'p> {
    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn alloc_template(&mut self, tag: &str) -> TId {
        let id = self.templates.len() as TId;
        self.templates.push(Template {
            name: format!("{}#{}", self.fn_name, tag),
            in_args: 0,
            ops: Vec::new(),
            term: Term::Ret(None),
            demand_entry: false,
        });
        self.templates_made += 1;
        id
    }

    fn finalize(&mut self, term: Term) {
        let t = &mut self.templates[self.cur as usize];
        t.ops = std::mem::take(&mut self.ops);
        t.term = term;
    }

    /// Registers that must survive a template boundary, in canonical
    /// order: scope variables then protected temporaries.
    fn boundary_args(&self) -> Vec<Reg> {
        self.scope
            .iter()
            .map(|v| v.reg)
            .chain(self.protected.iter().map(|p| p.0))
            .collect()
    }

    /// Renumber scope + protected into a fresh frame (0..n).
    fn rebind_frame(&mut self) {
        let mut r: Reg = 0;
        for v in &mut self.scope {
            v.reg = r;
            r += 1;
        }
        for p in &mut self.protected {
            p.0 = r;
            r += 1;
        }
        self.next_reg = r;
        self.hoisted.clear();
    }

    /// Enter `t` as the current template with the canonical frame.
    fn enter(&mut self, t: TId) {
        self.cur = t;
        self.ops = Vec::new();
        self.rebind_frame();
        self.templates[t as usize].in_args = self.next_reg;
    }

    /// Enter a *single-predecessor* target carrying hoisted fields across
    /// the boundary (branch arms; multi-predecessor merges and loop
    /// headers must use [`Lower::enter`] so every predecessor passes the
    /// same frame layout).
    fn enter_with_carry(
        &mut self,
        t: TId,
        carried: Vec<(Reg, String, Reg, Option<String>)>,
        old_scope_regs: &[Reg],
        old_prot_regs: &[Reg],
    ) {
        self.cur = t;
        self.ops = Vec::new();
        self.rebind_frame();
        self.restore_carried(carried, old_scope_regs, old_prot_regs);
        self.templates[t as usize].in_args = self.next_reg;
    }

    /// Hoisted entries eligible to cross a single-predecessor boundary:
    /// their base pointer survives in scope or protected. Sorted for
    /// reproducible codegen. `exclude` drops entries for one base (the
    /// pointer being re-demanded, whose fields are about to be re-hoisted
    /// fresh).
    fn carried_entries(&self, exclude: Option<Reg>) -> Vec<(Reg, String, Reg, Option<String>)> {
        let mut carried: Vec<(Reg, String, Reg, Option<String>)> = self
            .hoisted
            .iter()
            .filter(|(b, _)| {
                Some(**b) != exclude
                    && (self.scope.iter().any(|v| v.reg == **b)
                        || self.protected.iter().any(|p| p.0 == **b))
            })
            .flat_map(|(b, m)| {
                m.iter()
                    .map(move |(f, (r, ps))| (*b, f.clone(), *r, ps.clone()))
            })
            .collect();
        carried.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        carried
    }

    /// After [`Lower::rebind_frame`], re-establish carried hoists at the
    /// next frame positions (in `carried` order, matching the extra
    /// boundary arguments), keyed by the *remapped* base registers.
    fn restore_carried(
        &mut self,
        carried: Vec<(Reg, String, Reg, Option<String>)>,
        old_scope_regs: &[Reg],
        old_prot_regs: &[Reg],
    ) {
        for (old_base, field, _old_val, ps) in carried {
            let val_reg = self.next_reg;
            self.next_reg += 1;
            for (i, &oreg) in old_scope_regs.iter().enumerate() {
                if oreg == old_base {
                    let nb = self.scope[i].reg;
                    self.hoisted
                        .entry(nb)
                        .or_default()
                        .insert(field.clone(), (val_reg, ps.clone()));
                }
            }
            for (i, &oreg) in old_prot_regs.iter().enumerate() {
                if oreg == old_base {
                    let nb = self.protected[i].0;
                    self.hoisted
                        .entry(nb)
                        .or_default()
                        .insert(field.clone(), (val_reg, ps.clone()));
                }
            }
        }
    }

    /// Touch `base` (a global pointer to `sname`): split the thread with
    /// a Demand and hoist every field at the top of the continuation.
    /// Returns the remapped base register.
    ///
    /// Previously-hoisted fields whose base pointer survives the boundary
    /// (it is a scope variable or protected temp) are *carried* across the
    /// split, so chained dereferences like `a->x + b->y + a->z` touch each
    /// pointer exactly once.
    fn touch(&mut self, base: Reg, sname: &str) -> Reg {
        // Scope/protected slots holding this same pointer must see the
        // hoisted fields too (e.g. `p->x` where `p` is a variable: later
        // `p->y` looks up via the variable's register).
        let alias_scope: Vec<usize> = self
            .scope
            .iter()
            .enumerate()
            .filter(|(_, v)| v.reg == base)
            .map(|(i, _)| i)
            .collect();
        let alias_prot: Vec<usize> = self
            .protected
            .iter()
            .enumerate()
            .filter(|(_, p)| p.0 == base)
            .map(|(i, _)| i)
            .collect();

        let old_scope_regs: Vec<Reg> = self.scope.iter().map(|v| v.reg).collect();
        let old_prot_regs: Vec<Reg> = self.protected.iter().map(|p| p.0).collect();
        let carried = self.carried_entries(Some(base));

        let mut args = self.boundary_args();
        args.extend(carried.iter().map(|c| c.2));
        args.push(base);
        let next = self.alloc_template("touch");
        self.finalize(Term::Demand {
            ptr: base,
            t: next,
            args,
        });
        self.demand_sites += 1;

        self.cur = next;
        self.ops = Vec::new();
        self.rebind_frame();
        self.restore_carried(carried, &old_scope_regs, &old_prot_regs);
        let base2 = self.next_reg;
        self.next_reg += 1;
        self.templates[next as usize].in_args = self.next_reg;
        self.templates[next as usize].demand_entry = true;

        // Access hoisting: load the whole (just-arrived) object.
        let fields = self.structs[sname].clone();
        let mut map = HashMap::new();
        for (i, f) in fields.iter().enumerate() {
            let d = self.fresh();
            self.ops.push(Op::Load {
                dst: d,
                obj: base2,
                field: i as u16,
            });
            map.insert(f.name.clone(), (d, ptr_struct_of(&f.ty)));
        }
        for i in alias_scope {
            let r = self.scope[i].reg;
            self.hoisted.insert(r, map.clone());
        }
        for i in alias_prot {
            let r = self.protected[i].0;
            self.hoisted.insert(r, map.clone());
        }
        self.hoisted.insert(base2, map);
        base2
    }

    fn lookup_var(&self, name: &str) -> Option<&ScopeVar> {
        self.scope.iter().rev().find(|v| v.name == name)
    }

    fn expr(&mut self, e: &Expr) -> Result<(Reg, Option<String>), CompileError> {
        match e {
            Expr::Int(v) => {
                let r = self.fresh();
                self.ops.push(Op::Const(r, Value::Int(*v)));
                Ok((r, None))
            }
            Expr::Float(v) => {
                let r = self.fresh();
                self.ops.push(Op::Const(r, Value::Float(*v)));
                Ok((r, None))
            }
            Expr::Null => {
                let r = self.fresh();
                self.ops
                    .push(Op::Const(r, Value::Ptr(global_heap::GPtr::NULL)));
                Ok((r, None))
            }
            Expr::Var(name) => match self.lookup_var(name) {
                Some(v) => Ok((v.reg, v.ptr_struct.clone())),
                None => err(format!("unknown variable `{name}` in `{}`", self.fn_name)),
            },
            Expr::Bin(op, l, r) => {
                let (lr, _) = self.expr(l)?;
                self.protected.push((lr, None));
                let (rr, _) = self.expr(r)?;
                let (lr, _) = self.protected.pop().expect("protected underflow");
                let d = self.fresh();
                self.ops.push(Op::Bin(*op, d, lr, rr));
                Ok((d, None))
            }
            Expr::FieldRead { base, field } => {
                let (br, bs) = self.expr(base)?;
                let Some(sname) = bs else {
                    return err(format!(
                        "`->{field}`: dereference of a non-pointer expression in `{}`",
                        self.fn_name
                    ));
                };
                let fields = self
                    .structs
                    .get(&sname)
                    .ok_or_else(|| CompileError {
                        msg: format!("unknown struct `{sname}`"),
                    })?;
                if !fields.iter().any(|f| &f.name == field) {
                    return err(format!("struct `{sname}` has no field `{field}`"));
                }
                let base_reg = if self.hoisted.contains_key(&br) {
                    br
                } else {
                    self.touch(br, &sname)
                };
                let (r, ps) = self.hoisted[&base_reg][field].clone();
                Ok((r, ps))
            }
            Expr::Call { func, args } if func == "sqrt" => {
                // Numeric intrinsic: compiled inline (it cannot touch, so
                // no promotion is needed).
                if args.len() != 1 {
                    return err("`sqrt` takes exactly one argument");
                }
                let (a, _) = self.expr(&args[0])?;
                let d = self.fresh();
                self.ops.push(Op::Sqrt(d, a));
                Ok((d, None))
            }
            Expr::Call { .. } => err(format!(
                "in `{}`: calls may only appear as the direct right-hand side of a \
                 let/assignment or as a statement (function promotion)",
                self.fn_name
            )),
        }
    }

    /// Resolve + arity-check a call expression.
    fn resolve_call<'e>(
        &self,
        e: &'e Expr,
    ) -> Result<(TId, bool, &'e [Expr], &'e str), CompileError> {
        let Expr::Call { func, args } = e else {
            unreachable!("resolve_call on non-call")
        };
        let Some(&(entry, arity, has_ret)) = self.fns.get(func.as_str()) else {
            return err(format!("unknown function `{func}`"));
        };
        if args.len() != arity {
            return err(format!(
                "`{func}` expects {arity} arguments, got {}",
                args.len()
            ));
        }
        Ok((entry, has_ret, args, func))
    }

    /// Lower a promoted call statement. `bind` is `(name, Some(declared
    /// type))` for `let`, `(name, None)` for assignment, `None` to discard.
    fn call_stmt(&mut self, bind: Option<(&str, Option<&Ty>)>, call: &Expr) -> Result<(), CompileError> {
        let (entry, has_ret, args, func) = self.resolve_call(call)?;
        if bind.is_some() && !has_ret {
            return err(format!("`{func}` returns no value to bind"));
        }
        let func = func.to_string();
        let _ = func;
        // Evaluate arguments, protecting earlier ones across later splits.
        let n = args.len();
        for a in args {
            let (r, ps) = self.expr(a)?;
            self.protected.push((r, ps));
        }
        let arg_regs: Vec<Reg> = self
            .protected
            .split_off(self.protected.len() - n)
            .into_iter()
            .map(|p| p.0)
            .collect();
        // The continuation is single-predecessor: hoists carry through the
        // call (its result arrives after the carried values).
        let osr: Vec<Reg> = self.scope.iter().map(|v| v.reg).collect();
        let opr: Vec<Reg> = self.protected.iter().map(|p| p.0).collect();
        let carried = self.carried_entries(None);
        let mut cont_args = self.boundary_args();
        cont_args.extend(carried.iter().map(|c| c.2));
        let cont = self.alloc_template("ret");
        self.finalize(Term::Call {
            entry,
            args: arg_regs,
            cont,
            cont_args,
        });
        self.call_sites += 1;
        self.enter_with_carry(cont, carried, &osr, &opr);
        // Result arrives appended to the frame.
        let result = self.next_reg;
        self.next_reg += 1;
        self.templates[cont as usize].in_args = self.next_reg;
        match bind {
            Some((name, Some(ty))) => self.scope.push(ScopeVar {
                name: name.to_string(),
                reg: result,
                ptr_struct: ptr_struct_of(ty),
            }),
            Some((name, None)) => match self.scope.iter_mut().rev().find(|v| v.name == *name) {
                Some(v) => v.reg = result,
                None => return err(format!("assignment to unknown variable `{name}`")),
            },
            None => {}
        }
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            if self.done {
                return err(format!("unreachable statement after `return` in `{}`", self.fn_name));
            }
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Let { name, ty, value } => {
                if matches!(value, Expr::Call { func, .. } if func != "sqrt") {
                    self.call_stmt(Some((name, Some(ty))), value)
                } else {
                    let (r, _) = self.expr(value)?;
                    self.scope.push(ScopeVar {
                        name: name.clone(),
                        reg: r,
                        ptr_struct: ptr_struct_of(ty),
                    });
                    Ok(())
                }
            }
            Stmt::Assign { name, value } => {
                if matches!(value, Expr::Call { func, .. } if func != "sqrt") {
                    self.call_stmt(Some((name, None)), value)
                } else {
                    let (r, _) = self.expr(value)?;
                    match self.scope.iter_mut().rev().find(|v| &v.name == name) {
                        Some(v) => {
                            v.reg = r;
                            Ok(())
                        }
                        None => err(format!("assignment to unknown variable `{name}`")),
                    }
                }
            }
            Stmt::Return(val) => {
                let r = match val {
                    Some(e) => Some(self.expr(e)?.0),
                    None => None,
                };
                self.finalize(Term::Ret(r));
                self.done = true;
                Ok(())
            }
            Stmt::ConcFor { .. } => unreachable!(
                "conc for must be desugared before lowering (compile() runs the pass)"
            ),
            Stmt::Expr(e) => {
                if let Expr::Call { func, args } = e {
                    if func == "accum" {
                        // Reduction intrinsic: fold args[1] into the
                        // object at args[0]; compiled inline (the runtime
                        // batches the update).
                        if args.len() != 2 {
                            return err("`accum` takes (pointer, value)");
                        }
                        let (pr, ps) = self.expr(&args[0])?;
                        if ps.is_none() {
                            return err("`accum`: first argument must be a pointer");
                        }
                        self.protected.push((pr, ps));
                        let (vr, _) = self.expr(&args[1])?;
                        let (pr, _) = self.protected.pop().expect("protected underflow");
                        self.ops.push(Op::Accum(pr, vr));
                        return Ok(());
                    }
                    self.call_stmt(None, e)
                } else {
                    let _ = self.expr(e)?;
                    Ok(())
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (cr, _) = self.expr(cond)?;
                debug_assert!(self.protected.is_empty());
                let then_t = self.alloc_template("then");
                let else_t = self.alloc_template("else");
                let merge_t = self.alloc_template("merge");
                // Branch arms are single-predecessor: hoisted fields carry
                // into both (the merge does not — its two predecessors
                // must agree on the frame, which is scope-only).
                let old_scope_regs: Vec<Reg> = self.scope.iter().map(|v| v.reg).collect();
                let old_prot_regs: Vec<Reg> = self.protected.iter().map(|p| p.0).collect();
                let carried = self.carried_entries(None);
                let mut args = self.boundary_args();
                args.extend(carried.iter().map(|c| c.2));
                self.finalize(Term::Branch {
                    cond: cr,
                    then_t,
                    then_args: args.clone(),
                    else_t,
                    else_args: args,
                });
                let scope_len = self.scope.len();

                self.enter_with_carry(then_t, carried.clone(), &old_scope_regs, &old_prot_regs);
                self.block(then_blk)?;
                let then_done = self.done;
                self.scope.truncate(scope_len);
                if !then_done {
                    self.finalize(Term::Jump {
                        t: merge_t,
                        args: self.boundary_args(),
                    });
                }
                self.done = false;

                self.enter_with_carry(else_t, carried, &old_scope_regs, &old_prot_regs);
                self.block(else_blk)?;
                let else_done = self.done;
                self.scope.truncate(scope_len);
                let mut merge_carry = None;
                if !else_done {
                    if then_done {
                        // The then arm returned: the merge has a single
                        // live predecessor (this one), so hoists carry
                        // through — the common `if (p == null) return;`
                        // guard keeps its fields live past the merge.
                        let osr: Vec<Reg> = self.scope.iter().map(|v| v.reg).collect();
                        let opr: Vec<Reg> = self.protected.iter().map(|p| p.0).collect();
                        let carried2 = self.carried_entries(None);
                        let mut args = self.boundary_args();
                        args.extend(carried2.iter().map(|c| c.2));
                        self.finalize(Term::Jump { t: merge_t, args });
                        merge_carry = Some((carried2, osr, opr));
                    } else {
                        self.finalize(Term::Jump {
                            t: merge_t,
                            args: self.boundary_args(),
                        });
                    }
                }

                self.done = then_done && else_done;
                if !self.done {
                    match merge_carry {
                        Some((carried2, osr, opr)) => {
                            self.enter_with_carry(merge_t, carried2, &osr, &opr)
                        }
                        None => self.enter(merge_t),
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let header = self.alloc_template("loop");
                self.finalize(Term::Jump {
                    t: header,
                    args: self.boundary_args(),
                });
                self.enter(header);
                let (cr, _) = self.expr(cond)?;
                let body_t = self.alloc_template("body");
                let exit_t = self.alloc_template("exit");
                // Body and exit are each single-predecessor (the header's
                // branch), so condition-evaluation hoists carry into both;
                // the header itself has two predecessors (entry jump and
                // back edge) and stays scope-only.
                let old_scope_regs: Vec<Reg> = self.scope.iter().map(|v| v.reg).collect();
                let old_prot_regs: Vec<Reg> = self.protected.iter().map(|p| p.0).collect();
                let carried = self.carried_entries(None);
                let mut args = self.boundary_args();
                args.extend(carried.iter().map(|c| c.2));
                self.finalize(Term::Branch {
                    cond: cr,
                    then_t: body_t,
                    then_args: args.clone(),
                    else_t: exit_t,
                    else_args: args,
                });
                let scope_len = self.scope.len();
                self.enter_with_carry(body_t, carried.clone(), &old_scope_regs, &old_prot_regs);
                self.block(body)?;
                self.scope.truncate(scope_len);
                if !self.done {
                    self.finalize(Term::Jump {
                        t: header,
                        args: self.boundary_args(),
                    });
                }
                // The exit path is reachable regardless of the body.
                self.done = false;
                self.enter_with_carry(exit_t, carried, &old_scope_regs, &old_prot_regs);
                Ok(())
            }
            Stmt::Conc(children) => {
                // Each child: a promoted call, optionally bound.
                enum Bind {
                    LetVar(String, Option<String>),
                    AssignVar(String),
                    Discard,
                }
                let mut binds = Vec::new();
                let mut counts = Vec::new();
                let mut entries = Vec::new();
                for child in children {
                    let (bind, call) = match child {
                        Stmt::Let { name, ty, value } if matches!(value, Expr::Call { .. }) => {
                            (Bind::LetVar(name.clone(), ptr_struct_of(ty)), value)
                        }
                        Stmt::Assign { name, value } if matches!(value, Expr::Call { .. }) => {
                            (Bind::AssignVar(name.clone()), value)
                        }
                        Stmt::Expr(e) if matches!(e, Expr::Call { .. }) => (Bind::Discard, e),
                        other => {
                            return err(format!(
                                "conc blocks may contain only calls or call-bound \
                                 let/assignments, found {other:?}"
                            ))
                        }
                    };
                    let (entry, has_ret, args, func) = self.resolve_call(call)?;
                    if !matches!(bind, Bind::Discard) && !has_ret {
                        return err(format!("`{func}` returns no value to bind"));
                    }
                    for a in args {
                        let (r, ps) = self.expr(a)?;
                        self.protected.push((r, ps));
                    }
                    counts.push(args.len());
                    entries.push(entry);
                    binds.push(bind);
                }
                // Collect argument registers (remapped across any splits).
                let total: usize = counts.iter().sum();
                let tail = self.protected.split_off(self.protected.len() - total);
                let mut child_specs = Vec::with_capacity(entries.len());
                let mut off = 0;
                for (entry, &n) in entries.iter().zip(&counts) {
                    let regs: Vec<Reg> = tail[off..off + n].iter().map(|p| p.0).collect();
                    off += n;
                    child_specs.push((*entry, regs));
                }
                // The join is single-predecessor: hoists carry through
                // the fork (children's results arrive after them).
                let osr: Vec<Reg> = self.scope.iter().map(|v| v.reg).collect();
                let opr: Vec<Reg> = self.protected.iter().map(|p| p.0).collect();
                let carried = self.carried_entries(None);
                let mut cont_args = self.boundary_args();
                cont_args.extend(carried.iter().map(|c| c.2));
                let cont = self.alloc_template("join");
                self.finalize(Term::Fork {
                    children: child_specs,
                    cont,
                    cont_args,
                });
                self.fork_sites += 1;
                self.enter_with_carry(cont, carried, &osr, &opr);
                // Child results arrive appended in child order.
                let base = self.next_reg;
                self.next_reg += binds.len() as Reg;
                self.templates[cont as usize].in_args = self.next_reg;
                for (i, b) in binds.into_iter().enumerate() {
                    let r = base + i as Reg;
                    match b {
                        Bind::LetVar(name, ps) => self.scope.push(ScopeVar {
                            name,
                            reg: r,
                            ptr_struct: ps,
                        }),
                        Bind::AssignVar(name) => {
                            match self.scope.iter_mut().rev().find(|v| v.name == name) {
                                Some(v) => v.reg = r,
                                None => {
                                    return err(format!(
                                        "assignment to unknown variable `{name}`"
                                    ))
                                }
                            }
                        }
                        Bind::Discard => {}
                    }
                }
                Ok(())
            }
        }
    }
}

/// Compile a parsed program into thread templates. Runs the `conc for`
/// desugaring pass first (see [`mod@crate::desugar`]).
pub fn compile(prog: &Program) -> Result<CompiledProgram, CompileError> {
    let prog = &crate::desugar::desugar(prog)?;
    // Struct table.
    let mut structs: HashMap<String, Vec<Field>> = HashMap::new();
    for s in &prog.structs {
        if structs.insert(s.name.clone(), s.fields.clone()).is_some() {
            return err(format!("duplicate struct `{}`", s.name));
        }
    }
    for s in &prog.structs {
        for f in &s.fields {
            if let Ty::Ptr(t) = &f.ty {
                if !structs.contains_key(t) {
                    return err(format!(
                        "field `{}.{}` references unknown struct `{t}`",
                        s.name, f.name
                    ));
                }
            }
        }
    }

    // Pre-allocate function entries so recursion and forward calls work.
    let mut templates: Vec<Template> = Vec::new();
    let mut fns: HashMap<String, (TId, usize, bool)> = HashMap::new();
    for f in &prog.funcs {
        if fns.contains_key(&f.name) {
            return err(format!("duplicate function `{}`", f.name));
        }
        let entry = templates.len() as TId;
        templates.push(Template {
            name: format!("{}#entry", f.name),
            in_args: f.params.len() as u16,
            ops: Vec::new(),
            term: Term::Ret(None),
            demand_entry: false,
        });
        fns.insert(f.name.clone(), (entry, f.params.len(), f.ret.is_some()));
    }

    let mut stats = Vec::new();
    for f in &prog.funcs {
        for p in &f.params {
            if let Ty::Ptr(t) = &p.ty {
                if !structs.contains_key(t) {
                    return err(format!(
                        "parameter `{}` of `{}` references unknown struct `{t}`",
                        p.name, f.name
                    ));
                }
            }
        }
        let entry = fns[&f.name].0;
        let mut lower = Lower {
            templates: &mut templates,
            fns: &fns,
            structs: &structs,
            fn_name: f.name.clone(),
            cur: entry,
            ops: Vec::new(),
            next_reg: f.params.len() as Reg,
            scope: f
                .params
                .iter()
                .enumerate()
                .map(|(i, p)| ScopeVar {
                    name: p.name.clone(),
                    reg: i as Reg,
                    ptr_struct: ptr_struct_of(&p.ty),
                })
                .collect(),
            protected: Vec::new(),
            hoisted: HashMap::new(),
            demand_sites: 0,
            fork_sites: 0,
            call_sites: 0,
            templates_made: 1, // the entry
            done: false,
        };
        lower.block(&f.body)?;
        if !lower.done {
            lower.finalize(Term::Ret(None));
        }
        stats.push(FnStats {
            name: f.name.clone(),
            templates: lower.templates_made,
            demand_sites: lower.demand_sites,
            fork_sites: lower.fork_sites,
            call_sites: lower.call_sites,
        });
    }

    Ok(CompiledProgram {
        templates,
        functions: prog
            .funcs
            .iter()
            .map(|f| {
                let (t, a, r) = fns[&f.name];
                (f.name.clone(), t, a, r)
            })
            .collect(),
        structs: prog
            .structs
            .iter()
            .map(|s| StructLayout {
                name: s.name.clone(),
                fields: s.fields.iter().map(|f| f.name.clone()).collect(),
            })
            .collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_src(src: &str) -> CompiledProgram {
        compile(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_no_touch_is_one_thread() {
        let p = compile_src("fn f(a: int, b: int) -> int { return a + b * 2; }");
        assert_eq!(p.stats[0].templates, 1);
        assert_eq!(p.stats[0].demand_sites, 0);
    }

    #[test]
    fn single_deref_splits_once_and_hoists() {
        let p = compile_src(
            "struct Node { val: int; next: Node*; }
             fn f(n: Node*) -> int { return n->val + n->next->val; }",
        );
        // n touched once (hoisted: val AND next from the same arrival),
        // n->next touched once. Two demand sites, three templates.
        assert_eq!(p.stats[0].demand_sites, 2);
        assert_eq!(p.stats[0].templates, 3);
        // The first touch template hoists both fields of Node.
        let touch = p
            .templates
            .iter()
            .find(|t| t.demand_entry && t.name.starts_with("f#"))
            .unwrap();
        let loads = touch.ops.iter().filter(|o| matches!(o, Op::Load { .. })).count();
        assert_eq!(loads, 2, "both fields hoisted from one arrival");
    }

    #[test]
    fn repeated_fields_of_same_pointer_touch_once() {
        let p = compile_src(
            "struct P { x: float; y: float; z: float; }
             fn mag(p: P*) -> float {
               return p->x * p->x + p->y * p->y + p->z * p->z;
             }",
        );
        assert_eq!(p.stats[0].demand_sites, 1, "access hoisting coalesces touches");
    }

    #[test]
    fn call_promotion_creates_continuation() {
        let p = compile_src(
            "fn g(x: int) -> int { return x + 1; }
             fn f(x: int) -> int { let y: int = g(x); return y * 2; }",
        );
        let f = p.stats.iter().find(|s| s.name == "f").unwrap();
        assert_eq!(f.call_sites, 1);
        assert!(f.templates >= 2);
    }

    #[test]
    fn conc_block_forks() {
        let p = compile_src(
            "struct T { l: T*; r: T*; v: int; }
             fn sum(t: T*) -> int {
               if (t == null) { return 0; }
               let a: int = 0;
               let b: int = 0;
               conc {
                 a = sum(t->l);
                 b = sum(t->r);
               }
               return a + b + t->v;
             }",
        );
        let s = &p.stats[0];
        assert_eq!(s.fork_sites, 1);
        // t is touched exactly once: l and r are hoisted together from the
        // single arrival and `t->v` after the join reuses the hoist
        // carried through the fork continuation.
        assert_eq!(s.demand_sites, 1);
        assert!(s.templates >= 4);
    }

    #[test]
    fn while_loop_retouches_after_rebind() {
        let p = compile_src(
            "struct Node { val: int; next: Node*; }
             fn sum(n: Node*) -> int {
               let acc: int = 0;
               while (n != null) {
                 acc = acc + n->val;
                 n = n->next;
               }
               return acc;
             }",
        );
        // One touch inside the loop body (val+next hoisted together).
        assert_eq!(p.stats[0].demand_sites, 1);
        assert!(p.stats[0].templates >= 4, "entry, header, body, exit");
    }

    #[test]
    fn errors_are_reported() {
        let bad = [
            ("fn f() { g(); }", "unknown function"),
            ("fn f() -> int { return f() + 0; }", "right-hand side"),
            ("fn f() -> int { return x; }", "unknown variable"),
            (
                "struct S { a: int; } fn f(s: S*) -> int { return s->b; }",
                "no field",
            ),
            (
                "fn g() -> int { return 1; } fn f() -> int { return g() + 1; }",
                "right-hand side",
            ),
            (
                "fn g(x: int) -> int { return x; } fn f() -> int { let a: int = g(); return a; }",
                "expects 1 arguments",
            ),
            (
                "fn f() -> int { return 1->x; }",
                "non-pointer",
            ),
            (
                "struct S { a: int; } fn f(s: S*) { conc { let x: int = 3; } }",
                "conc blocks",
            ),
        ];
        for (src, needle) in bad {
            let e = compile(&parse(src).unwrap()).unwrap_err();
            assert!(
                e.msg.contains(needle),
                "source {src:?}: expected {needle:?} in {:?}",
                e.msg
            );
        }
    }

    #[test]
    fn dump_is_readable() {
        let p = compile_src(
            "struct Node { val: int; next: Node*; }
             fn f(n: Node*) -> int { return n->val; }",
        );
        let d = p.dump();
        assert!(d.contains("Demand"));
        assert!(d.contains("[demand-entry]"));
    }
}
