//! Desugaring of `conc for` into recursive binary-split `conc` pairs.
//!
//! The paper's concurrent loop
//!
//! ```text
//! conc for (i = lo; i < hi; i = i + 1) { body(i); }
//! ```
//!
//! becomes a synthesized helper function
//!
//! ```text
//! fn __concfor_K(__lo: int, __hi: int, <captured vars>) {
//!   if (__hi - __lo < 1) { return; }
//!   if (__hi - __lo == 1) { let i: int = __lo; <body> return; }
//!   let __mid: int = __lo + (__hi - __lo) / 2;
//!   conc {
//!     __concfor_K(__lo, __mid, <captured>);
//!     __concfor_K(__mid, __hi, <captured>);
//!   }
//! }
//! ```
//!
//! plus a call at the original site. The split tree exposes the loop's
//! concurrency to the runtime in O(log n) fork depth, and the runtime's
//! k-bounded admission strip-mines whatever reaches the top level —
//! exactly how the paper treats top-level `conc` loops.
//!
//! The pass runs before lowering; it needs the enclosing scope's types for
//! the captured free variables, so it tracks declarations as it walks.

use crate::ast::*;
use crate::compile::CompileError;
use std::collections::{BTreeMap, HashMap};

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError { msg: msg.into() })
}

/// Collect variables *used* by an expression.
fn expr_uses(e: &Expr, out: &mut BTreeMap<String, ()>) {
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Null => {}
        Expr::Var(v) => {
            out.insert(v.clone(), ());
        }
        Expr::Bin(_, a, b) => {
            expr_uses(a, out);
            expr_uses(b, out);
        }
        Expr::FieldRead { base, .. } => expr_uses(base, out),
        Expr::Call { args, .. } => {
            for a in args {
                expr_uses(a, out);
            }
        }
    }
}

/// Variables used by a block but not defined within it (before use).
fn free_vars(block: &[Stmt], bound: &mut Vec<String>, out: &mut BTreeMap<String, ()>) {
    let depth = bound.len();
    for s in block {
        match s {
            Stmt::Let { name, value, .. } => {
                expr_uses_filtered(value, bound, out);
                bound.push(name.clone());
            }
            Stmt::Assign { name, value } => {
                expr_uses_filtered(value, bound, out);
                if !bound.contains(name) {
                    out.insert(name.clone(), ());
                }
            }
            Stmt::Return(v) => {
                if let Some(v) = v {
                    expr_uses_filtered(v, bound, out);
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                expr_uses_filtered(cond, bound, out);
                free_vars(then_blk, bound, out);
                free_vars(else_blk, bound, out);
            }
            Stmt::While { cond, body } => {
                expr_uses_filtered(cond, bound, out);
                free_vars(body, bound, out);
            }
            Stmt::Conc(body) => free_vars(body, bound, out),
            Stmt::ConcFor { var, lo, hi, body } => {
                expr_uses_filtered(lo, bound, out);
                expr_uses_filtered(hi, bound, out);
                bound.push(var.clone());
                free_vars(body, bound, out);
                bound.pop();
            }
            Stmt::Expr(e) => expr_uses_filtered(e, bound, out),
        }
    }
    bound.truncate(depth);
}

fn expr_uses_filtered(e: &Expr, bound: &[String], out: &mut BTreeMap<String, ()>) {
    let mut used = BTreeMap::new();
    expr_uses(e, &mut used);
    for (v, ()) in used {
        if !bound.contains(&v) {
            out.insert(v, ());
        }
    }
}

struct Desugar {
    counter: u32,
    synthesized: Vec<FnDecl>,
}

impl Desugar {
    /// Rewrite a block in place; `scope` maps visible variables to types.
    fn block(
        &mut self,
        stmts: Vec<Stmt>,
        scope: &mut HashMap<String, Ty>,
    ) -> Result<Vec<Stmt>, CompileError> {
        let mut out = Vec::with_capacity(stmts.len());
        let mut declared: Vec<String> = Vec::new();
        for s in stmts {
            match s {
                Stmt::ConcFor { var, lo, hi, body } => {
                    // Free variables of the body (minus the loop var) must
                    // all be in scope; they become captured parameters.
                    let mut bound = vec![var.clone()];
                    let mut free = BTreeMap::new();
                    free_vars(&body, &mut bound, &mut free);
                    let mut captured: Vec<Field> = Vec::new();
                    for (name, ()) in free {
                        // Calls also surface function names via Var? No —
                        // Call carries its callee separately; every entry
                        // here is a real variable.
                        match scope.get(&name) {
                            Some(ty) => captured.push(Field {
                                name,
                                ty: ty.clone(),
                            }),
                            None => {
                                return err(format!(
                                    "conc for: `{name}` used in the body is not in scope"
                                ))
                            }
                        }
                    }

                    let fname = format!("__concfor_{}", self.counter);
                    self.counter += 1;
                    let v = |n: &str| Expr::Var(n.to_string());
                    let span = Expr::Bin(
                        BinOp::Sub,
                        Box::new(v("__hi")),
                        Box::new(v("__lo")),
                    );
                    let call_with = |a: &str, b: &str, captured: &[Field]| Expr::Call {
                        func: fname.clone(),
                        args: std::iter::once(v(a))
                            .chain(std::iter::once(v(b)))
                            .chain(captured.iter().map(|f| Expr::Var(f.name.clone())))
                            .collect(),
                    };

                    // Recursively desugar the body too (nested conc for).
                    let mut inner_scope = scope.clone();
                    inner_scope.insert(var.clone(), Ty::Int);
                    for f in &captured {
                        inner_scope.insert(f.name.clone(), f.ty.clone());
                    }
                    let body = self.block(body, &mut inner_scope)?;

                    let mut base_blk = vec![Stmt::Let {
                        name: var.clone(),
                        ty: Ty::Int,
                        value: v("__lo"),
                    }];
                    base_blk.extend(body);
                    base_blk.push(Stmt::Return(None));

                    let helper = FnDecl {
                        name: fname.clone(),
                        params: std::iter::once(Field {
                            name: "__lo".into(),
                            ty: Ty::Int,
                        })
                        .chain(std::iter::once(Field {
                            name: "__hi".into(),
                            ty: Ty::Int,
                        }))
                        .chain(captured.iter().cloned())
                        .collect(),
                        ret: None,
                        body: vec![
                            Stmt::If {
                                cond: Expr::Bin(
                                    BinOp::Lt,
                                    Box::new(span.clone()),
                                    Box::new(Expr::Int(1)),
                                ),
                                then_blk: vec![Stmt::Return(None)],
                                else_blk: vec![],
                            },
                            Stmt::If {
                                cond: Expr::Bin(
                                    BinOp::Eq,
                                    Box::new(span.clone()),
                                    Box::new(Expr::Int(1)),
                                ),
                                then_blk: base_blk,
                                else_blk: vec![],
                            },
                            Stmt::Let {
                                name: "__mid".into(),
                                ty: Ty::Int,
                                value: Expr::Bin(
                                    BinOp::Add,
                                    Box::new(v("__lo")),
                                    Box::new(Expr::Bin(
                                        BinOp::Div,
                                        Box::new(span),
                                        Box::new(Expr::Int(2)),
                                    )),
                                ),
                            },
                            Stmt::Conc(vec![
                                Stmt::Expr(call_with("__lo", "__mid", &captured)),
                                Stmt::Expr(call_with("__mid", "__hi", &captured)),
                            ]),
                        ],
                    };
                    self.synthesized.push(helper);

                    // The original site becomes a plain helper call.
                    out.push(Stmt::Expr(Expr::Call {
                        func: fname,
                        args: std::iter::once(lo)
                            .chain(std::iter::once(hi))
                            .chain(captured.iter().map(|f| Expr::Var(f.name.clone())))
                            .collect(),
                    }));
                }
                Stmt::Let { name, ty, value } => {
                    scope.insert(name.clone(), ty.clone());
                    declared.push(name.clone());
                    out.push(Stmt::Let { name, ty, value });
                }
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let then_blk = self.block(then_blk, &mut scope.clone())?;
                    let else_blk = self.block(else_blk, &mut scope.clone())?;
                    out.push(Stmt::If {
                        cond,
                        then_blk,
                        else_blk,
                    });
                }
                Stmt::While { cond, body } => {
                    let body = self.block(body, &mut scope.clone())?;
                    out.push(Stmt::While { cond, body });
                }
                Stmt::Conc(body) => {
                    let body = self.block(body, &mut scope.clone())?;
                    out.push(Stmt::Conc(body));
                }
                other => out.push(other),
            }
        }
        for d in declared {
            scope.remove(&d);
        }
        Ok(out)
    }
}

/// Replace every `conc for` in `prog` with a synthesized recursive
/// binary-split helper plus a call. Returns the rewritten program.
pub fn desugar(prog: &Program) -> Result<Program, CompileError> {
    let mut d = Desugar {
        counter: 0,
        synthesized: Vec::new(),
    };
    let mut funcs = Vec::with_capacity(prog.funcs.len());
    for f in &prog.funcs {
        let mut scope: HashMap<String, Ty> = f
            .params
            .iter()
            .map(|p| (p.name.clone(), p.ty.clone()))
            .collect();
        let body = d.block(f.body.clone(), &mut scope)?;
        funcs.push(FnDecl {
            name: f.name.clone(),
            params: f.params.clone(),
            ret: f.ret.clone(),
            body,
        });
    }
    funcs.extend(d.synthesized);
    Ok(Program {
        structs: prog.structs.clone(),
        funcs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn conc_for_synthesizes_helper() {
        let prog = parse(
            "fn work(i: int, scale: int) -> int { return i * scale; }
             fn kernel(n: int, scale: int) {
               conc for (i = 0; i < n; i = i + 1) {
                 work(i, scale);
               }
             }",
        )
        .unwrap();
        let out = desugar(&prog).unwrap();
        assert_eq!(out.funcs.len(), 3);
        let helper = &out.funcs[2];
        assert!(helper.name.starts_with("__concfor_"));
        // __lo, __hi, plus the captured `scale` (not `i`, not `n`).
        let names: Vec<&str> = helper.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["__lo", "__hi", "scale"]);
        // The original site is now a call.
        match &out.funcs[1].body[0] {
            Stmt::Expr(Expr::Call { func, args }) => {
                assert_eq!(func, &helper.name);
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected helper call, got {other:?}"),
        }
    }

    #[test]
    fn out_of_scope_capture_is_an_error() {
        let prog = parse(
            "fn g(i: int) -> int { return i; }
             fn kernel(n: int) {
               conc for (i = 0; i < n; i = i + 1) { g(mystery); }
             }",
        )
        .unwrap();
        let e = desugar(&prog).unwrap_err();
        assert!(e.msg.contains("mystery"), "{e}");
    }

    #[test]
    fn nested_conc_for_desugars_both() {
        let prog = parse(
            "fn g(i: int, j: int) -> int { return i + j; }
             fn kernel(n: int) {
               conc for (i = 0; i < n; i = i + 1) {
                 conc for (j = 0; j < n; j = j + 1) {
                   g(i, j);
                 }
               }
             }",
        )
        .unwrap();
        let out = desugar(&prog).unwrap();
        let helpers = out
            .funcs
            .iter()
            .filter(|f| f.name.starts_with("__concfor_"))
            .count();
        assert_eq!(helpers, 2);
    }

    #[test]
    fn plain_program_unchanged() {
        let prog = parse("fn f(a: int) -> int { return a + 1; }").unwrap();
        let out = desugar(&prog).unwrap();
        assert_eq!(out, prog);
    }
}
