//! # dpa-compiler — the compiler half of Dynamic Pointer Alignment
//!
//! The paper's compiler "decomposes a program into non-blocking threads
//! that operate on specific pointers and labels thread creation sites with
//! their corresponding pointers". This crate reproduces that pipeline on
//! **Mini-ICC**, an ICC++-like kernel language:
//!
//! * [`lexer`] / [`parser`] — source text → AST ([`ast`]);
//! * [`desugar`] — `conc for (i = lo; i < hi; i = i + 1)` loops (the
//!   paper's concurrent-loop annotation) rewritten into recursive
//!   binary-split `conc` pairs;
//! * [`mod@compile`] — the thread partitioner: coarse alias classes, touch
//!   splitting, whole-object access hoisting (carried across every
//!   single-predecessor boundary), function promotion, `conc` forks, and
//!   the `sqrt`/`accum` intrinsics (the latter emits the runtime's remote
//!   reductions); emits pointer-labeled thread templates ([`program`])
//!   plus the static thread statistics the paper tabulates;
//! * [`world`] — a builder for distributed Mini-ICC object graphs;
//! * [`interp`] — a template interpreter implementing
//!   [`dpa_core::PtrApp`], so compiled kernels run under DPA, caching,
//!   blocking, or sequential scheduling, unchanged.
//!
//! ```
//! use dpa_compiler::{compile_source, IccApp, IccWorldBuilder, Value};
//! use dpa_core::{run_phase, DpaConfig};
//! use global_heap::GPtr;
//! use sim_net::NetConfig;
//!
//! let prog = compile_source(
//!     "struct Node { val: int; next: Node*; }
//!      fn sum(n: Node*) -> int {
//!        if (n == null) { return 0; }
//!        let rest: int = sum(n->next);
//!        return rest + n->val;
//!      }").unwrap();
//!
//! let mut b = IccWorldBuilder::new(prog, "sum", 2);
//! let tail = b.alloc(1, "Node", vec![Value::Int(2), Value::Ptr(GPtr::NULL)]);
//! let head = b.alloc(0, "Node", vec![Value::Int(40), Value::Ptr(tail)]);
//! b.add_root(0, vec![Value::Ptr(head)]);
//! let world = b.build();
//!
//! let mut total = 0;
//! run_phase(2, NetConfig::default(), DpaConfig::dpa(8),
//!     |i| IccApp::new(world.clone(), i),
//!     |_, app| total += app.int_sum);
//! assert_eq!(total, 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod desugar;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod program;
pub mod world;

pub use compile::{compile, CompileError};
pub use interp::{IccApp, IccTask};
pub use lexer::SyntaxError;
pub use parser::parse;
pub use program::{CompiledProgram, FnStats, Value};
pub use world::{IccWorld, IccWorldBuilder};

/// Parse and compile Mini-ICC source in one step.
pub fn compile_source(src: &str) -> Result<CompiledProgram, Box<dyn std::error::Error>> {
    Ok(compile(&parse(src)?)?)
}
