//! Abstract syntax for Mini-ICC — the ICC++-like kernel language the
//! compiler half of DPA operates on.
//!
//! The subset covers what the paper's examples need: struct declarations
//! with pointer fields, recursive functions, `if`/`while`, arithmetic, the
//! `conc { … }` block-level concurrency annotation, and pointer field
//! reads (`e->f`) — the *touches* the partitioner splits threads at.

use std::fmt;

/// A source type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Pointer to a named struct (global: potentially remote).
    Ptr(String),
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Float => write!(f, "float"),
            Ty::Ptr(s) => write!(f, "{s}*"),
        }
    }
}

/// A struct field declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
}

/// A struct declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct StructDecl {
    /// Struct name.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<Field>,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// The null pointer literal.
    Null,
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Pointer field read `base->field` — a *touch* of `base`.
    FieldRead {
        /// Pointer expression being dereferenced.
        base: Box<Expr>,
        /// Field name.
        field: String,
    },
    /// Function call. The compiler requires calls to appear only as the
    /// full right-hand side of a `let`/assignment or as a statement
    /// (function promotion turns them into thread spawns).
    Call {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let x: ty = e;`
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Initializer.
        value: Expr,
    },
    /// `x = e;`
    Assign {
        /// Target variable.
        name: String,
        /// New value.
        value: Expr,
    },
    /// `return e?;`
    Return(Option<Expr>),
    /// `if (c) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_blk: Vec<Stmt>,
    },
    /// `while (c) { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `conc { … }` — statements may execute in any interleaving; the
    /// block joins before control continues.
    Conc(Vec<Stmt>),
    /// `conc for (i = lo; i < hi; i = i + 1) { … }` — the paper's
    /// concurrent loop: iterations are independent and may interleave.
    /// Desugared (see `crate::desugar`) into a recursive binary-split
    /// helper function of `conc` pairs before lowering.
    ConcFor {
        /// Loop variable (int).
        var: String,
        /// Inclusive lower bound expression.
        lo: Expr,
        /// Exclusive upper bound expression.
        hi: Expr,
        /// Loop body (the loop variable is in scope).
        body: Vec<Stmt>,
    },
    /// Expression statement (a call evaluated for effect/at join).
    Expr(Expr),
}

/// A function declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Field>,
    /// Return type (`None` = void).
    pub ret: Option<Ty>,
    /// Body.
    pub body: Vec<Stmt>,
}

/// A whole program: structs plus functions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Struct declarations.
    pub structs: Vec<StructDecl>,
    /// Function declarations.
    pub funcs: Vec<FnDecl>,
}

impl Program {
    /// Find a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<&StructDecl> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Find a function by name.
    pub fn fn_by_name(&self, name: &str) -> Option<&FnDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Ty::Int.to_string(), "int");
        assert_eq!(Ty::Ptr("Node".into()).to_string(), "Node*");
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            structs: vec![StructDecl {
                name: "Node".into(),
                fields: vec![],
            }],
            funcs: vec![FnDecl {
                name: "walk".into(),
                params: vec![],
                ret: None,
                body: vec![],
            }],
        };
        assert!(p.struct_by_name("Node").is_some());
        assert!(p.struct_by_name("Leaf").is_none());
        assert!(p.fn_by_name("walk").is_some());
    }
}
