//! The template interpreter, as a [`PtrApp`]: compiled Mini-ICC kernels
//! execute directly on the DPA runtime (or any baseline variant).
//!
//! Each runtime work item is one template activation. `Demand`
//! terminators become runtime demands (the pointer-labeled dependent
//! threads of the paper); `Call`/`Fork` create join cells whose
//! continuations fire when every child has returned. Iteration `i` of the
//! top-level loop is the `i`-th kernel root registered for this node; a
//! kernel's return value is folded into the per-node accumulators.

use crate::ast::BinOp;
use crate::program::{Op, Term, TId, Value};
use crate::world::IccWorld;
use dpa_core::{PtrApp, WorkEnv};
use global_heap::GPtr;
use std::sync::{Arc, Mutex};

/// Where a returning activation delivers its value.
///
/// Join cells are shared only between tasks of *one* node, which always
/// execute on a single simulator worker — but `PtrApp::Work` must be
/// `Send` (the parallel engine moves whole nodes across threads), so the
/// cells are `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>`. The locks are
/// never contended.
struct JoinState {
    remaining: usize,
    results: Vec<Value>,
    cont: TId,
    cont_regs: Vec<Value>,
    parent: Option<(Arc<Mutex<JoinState>>, usize)>,
}

/// One template activation: the interpreter's work item.
pub struct IccTask {
    t: TId,
    regs: Vec<Value>,
    ret_to: Option<(Arc<Mutex<JoinState>>, usize)>,
}

/// Per-node interpreter state.
pub struct IccApp {
    world: Arc<IccWorld>,
    me: u16,
    /// Sum of integer kernel results.
    pub int_sum: i64,
    /// Sum of float kernel results.
    pub float_sum: f64,
    /// Completed kernel invocations.
    pub completed: u64,
    /// Interpreted ops executed.
    pub ops_executed: u64,
    /// Per-object reduction accumulators (owner side), keyed by the
    /// object's packed pointer bits. Filled by `accum(ptr, value)`.
    pub updates: std::collections::HashMap<u64, f64>,
}

impl IccApp {
    /// The interpreter for node `me`.
    pub fn new(world: Arc<IccWorld>, me: u16) -> IccApp {
        IccApp {
            world,
            me,
            int_sum: 0,
            float_sum: 0.0,
            completed: 0,
            ops_executed: 0,
            updates: std::collections::HashMap::new(),
        }
    }

    fn accumulate(&mut self, v: Value) {
        match v {
            Value::Int(i) => self.int_sum = self.int_sum.wrapping_add(i),
            Value::Float(f) => self.float_sum += f,
            Value::Ptr(_) => {}
        }
        self.completed += 1;
    }

    /// Deliver `v` to a join cell; if it was the last outstanding child,
    /// schedule the continuation.
    fn deliver(
        &mut self,
        env: &mut WorkEnv<'_, IccTask>,
        target: Option<(Arc<Mutex<JoinState>>, usize)>,
        v: Value,
    ) {
        match target {
            None => self.accumulate(v),
            Some((cell, slot)) => {
                let ready = {
                    let mut st = cell.lock().expect("join cell poisoned");
                    st.results[slot] = v;
                    st.remaining -= 1;
                    st.remaining == 0
                };
                if ready {
                    let mut st = cell.lock().expect("join cell poisoned");
                    let mut regs = std::mem::take(&mut st.cont_regs);
                    regs.append(&mut st.results);
                    let task = IccTask {
                        t: st.cont,
                        regs,
                        ret_to: st.parent.take(),
                    };
                    drop(st);
                    env.local(task);
                }
            }
        }
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Value {
    use Value::*;
    let as_f = |v: Value| match v {
        Int(i) => i as f64,
        Float(f) => f,
        Ptr(_) => panic!("arithmetic on a pointer"),
    };
    let bool_v = |c: bool| Int(c as i64);
    match op {
        BinOp::Eq | BinOp::Ne => {
            let eq = match (a, b) {
                (Ptr(x), Ptr(y)) => x == y,
                (Int(x), Int(y)) => x == y,
                (Float(x), Float(y)) => x == y,
                (Int(x), Float(y)) | (Float(y), Int(x)) => x as f64 == y,
                (Ptr(p), _) | (_, Ptr(p)) => {
                    // Comparing a pointer against a non-pointer: only null
                    // comparisons are meaningful; treat as inequality.
                    let _ = p;
                    false
                }
            };
            bool_v(if op == BinOp::Eq { eq } else { !eq })
        }
        BinOp::Lt => bool_v(as_f(a) < as_f(b)),
        BinOp::Le => bool_v(as_f(a) <= as_f(b)),
        BinOp::Gt => bool_v(as_f(a) > as_f(b)),
        BinOp::Ge => bool_v(as_f(a) >= as_f(b)),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => match (a, b) {
            (Int(x), Int(y)) => {
                let v = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        assert!(y != 0, "integer division by zero");
                        x.wrapping_div(y)
                    }
                    BinOp::Mod => {
                        assert!(y != 0, "integer modulo by zero");
                        x.wrapping_rem(y)
                    }
                    _ => unreachable!(),
                };
                Int(v)
            }
            (a, b) => {
                let (x, y) = (as_f(a), as_f(b));
                Float(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Mod => x % y,
                    _ => unreachable!(),
                })
            }
        },
    }
}

impl IccApp {
    fn gather(regs: &[Value], idx: &[u16]) -> Vec<Value> {
        idx.iter().map(|&r| regs[r as usize]).collect()
    }
}

impl PtrApp for IccApp {
    type Work = IccTask;

    fn num_iterations(&self) -> usize {
        self.world.roots_of(self.me).len()
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, IccTask>) {
        let args = self.world.roots_of(self.me)[iter].clone();
        env.local(IccTask {
            t: self.world.kernel_entry,
            regs: args,
            ret_to: None,
        });
    }

    fn run_work(&mut self, task: IccTask, env: &mut WorkEnv<'_, IccTask>) {
        let world = self.world.clone();
        let tmpl = &world.program.templates[task.t as usize];
        let mut regs = task.regs;
        debug_assert!(
            regs.len() >= tmpl.in_args as usize,
            "{}: frame {} < in_args {}",
            tmpl.name,
            regs.len(),
            tmpl.in_args
        );

        let set = |regs: &mut Vec<Value>, r: u16, v: Value| {
            let i = r as usize;
            if i >= regs.len() {
                regs.resize(i + 1, Value::Int(0));
            }
            regs[i] = v;
        };

        for op in &tmpl.ops {
            self.ops_executed += 1;
            env.charge(world.op_ns);
            match op {
                Op::Const(d, v) => set(&mut regs, *d, *v),
                Op::Move(d, s) => {
                    let v = regs[*s as usize];
                    set(&mut regs, *d, v);
                }
                Op::Bin(op, d, a, b) => {
                    let v = eval_bin(*op, regs[*a as usize], regs[*b as usize]);
                    set(&mut regs, *d, v);
                }
                Op::Accum(pr, vr) => {
                    let Value::Ptr(p) = regs[*pr as usize] else {
                        panic!("{}: accum through a non-pointer", tmpl.name)
                    };
                    assert!(!p.is_null(), "{}: accum on null pointer", tmpl.name);
                    let v = match regs[*vr as usize] {
                        Value::Int(i) => i as f64,
                        Value::Float(f) => f,
                        Value::Ptr(_) => panic!("{}: accum of a pointer value", tmpl.name),
                    };
                    env.accumulate(p, v);
                }
                Op::Sqrt(d, a) => {
                    let x = match regs[*a as usize] {
                        Value::Int(i) => i as f64,
                        Value::Float(f) => f,
                        Value::Ptr(_) => panic!("{}: sqrt of a pointer", tmpl.name),
                    };
                    set(&mut regs, *d, Value::Float(x.sqrt()));
                }
                Op::Load { dst, obj, field } => {
                    let Value::Ptr(p) = regs[*obj as usize] else {
                        panic!("{}: load through a non-pointer", tmpl.name)
                    };
                    assert!(!p.is_null(), "{}: null pointer dereference", tmpl.name);
                    env.assert_readable(p);
                    let v = world.field(p, *field);
                    set(&mut regs, *dst, v);
                }
            }
        }

        match &tmpl.term {
            Term::Jump { t, args } => {
                env.local(IccTask {
                    t: *t,
                    regs: Self::gather(&regs, args),
                    ret_to: task.ret_to,
                });
            }
            Term::Branch {
                cond,
                then_t,
                then_args,
                else_t,
                else_args,
            } => {
                env.charge(world.op_ns);
                let (t, a) = if regs[*cond as usize].truthy() {
                    (*then_t, then_args)
                } else {
                    (*else_t, else_args)
                };
                env.local(IccTask {
                    t,
                    regs: Self::gather(&regs, a),
                    ret_to: task.ret_to,
                });
            }
            Term::Demand { ptr, t, args } => {
                let Value::Ptr(p) = regs[*ptr as usize] else {
                    panic!("{}: demand through a non-pointer", tmpl.name)
                };
                assert!(!p.is_null(), "{}: null pointer touched", tmpl.name);
                env.demand(
                    p,
                    IccTask {
                        t: *t,
                        regs: Self::gather(&regs, args),
                        ret_to: task.ret_to,
                    },
                );
            }
            Term::Call {
                entry,
                args,
                cont,
                cont_args,
            } => {
                let cell = Arc::new(Mutex::new(JoinState {
                    remaining: 1,
                    results: vec![Value::Int(0)],
                    cont: *cont,
                    cont_regs: Self::gather(&regs, cont_args),
                    parent: task.ret_to,
                }));
                env.local(IccTask {
                    t: *entry,
                    regs: Self::gather(&regs, args),
                    ret_to: Some((cell, 0)),
                });
            }
            Term::Fork {
                children,
                cont,
                cont_args,
            } => {
                let cell = Arc::new(Mutex::new(JoinState {
                    remaining: children.len(),
                    results: vec![Value::Int(0); children.len()],
                    cont: *cont,
                    cont_regs: Self::gather(&regs, cont_args),
                    parent: task.ret_to,
                }));
                for (slot, (entry, args)) in children.iter().enumerate() {
                    env.local(IccTask {
                        t: *entry,
                        regs: Self::gather(&regs, args),
                        ret_to: Some((cell.clone(), slot)),
                    });
                }
            }
            Term::Ret(v) => {
                let val = v.map_or(Value::Int(0), |r| regs[r as usize]);
                self.deliver(env, task.ret_to, val);
            }
        }
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.classes.size(ptr.class())
    }

    fn apply_update(&mut self, ptr: GPtr, value: f64) {
        *self.updates.entry(ptr.bits()).or_insert(0.0) += value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_bin_arithmetic() {
        assert_eq!(eval_bin(BinOp::Add, Value::Int(2), Value::Int(3)), Value::Int(5));
        assert_eq!(
            eval_bin(BinOp::Mul, Value::Float(2.0), Value::Int(3)),
            Value::Float(6.0)
        );
        assert_eq!(eval_bin(BinOp::Mod, Value::Int(7), Value::Int(4)), Value::Int(3));
        assert_eq!(eval_bin(BinOp::Lt, Value::Int(1), Value::Int(2)), Value::Int(1));
    }

    #[test]
    fn eval_bin_pointer_equality() {
        let p = Value::Ptr(GPtr::new(0, global_heap::ObjClass(0), 3));
        let null = Value::Ptr(GPtr::NULL);
        assert_eq!(eval_bin(BinOp::Eq, p, null), Value::Int(0));
        assert_eq!(eval_bin(BinOp::Ne, p, null), Value::Int(1));
        assert_eq!(eval_bin(BinOp::Eq, null, null), Value::Int(1));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_zero_panics() {
        eval_bin(BinOp::Div, Value::Int(1), Value::Int(0));
    }
}
