//! The compiled form: non-blocking thread templates.
//!
//! The partitioner (see [`mod@crate::compile`]) lowers each Mini-ICC function
//! into a set of **templates** — straight-line op sequences ending in a
//! scheduling terminator. A template is exactly the paper's non-blocking
//! thread: it runs to completion, and every potentially-remote dereference
//! has been hoisted to the top of the template that the touch's
//! [`Term::Demand`] creates, labeled with the touched pointer.

use crate::ast::BinOp;
use global_heap::GPtr;
use std::fmt;

/// A virtual register within a template frame.
pub type Reg = u16;

/// Index of a template in the compiled program.
pub type TId = u32;

/// A runtime value (dynamically typed; `Ptr(GPtr::NULL)` is `null`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// 64-bit integer (also carries booleans: 0 / 1).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Global pointer (possibly null).
    Ptr(GPtr),
}

impl Value {
    /// Truthiness for `Branch`.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
            Value::Ptr(p) => !p.is_null(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ptr(p) => write!(f, "{p}"),
        }
    }
}

/// A straight-line operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// `dst = constant`
    Const(Reg, Value),
    /// `dst = src`
    Move(Reg, Reg),
    /// `dst = a <op> b`
    Bin(BinOp, Reg, Reg, Reg),
    /// `dst = sqrt(src)` — the numeric intrinsic (compiled inline, not
    /// promoted: it cannot touch).
    Sqrt(Reg, Reg),
    /// `accum(ptr, value)` — emit a remote reduction folding `value` into
    /// the accumulator of the object at `ptr` (the runtime batches it).
    Accum(Reg, Reg),
    /// `dst = obj->field` — `obj` must already be available (hoisted
    /// loads appear only at the top of a demand-entered template).
    Load {
        /// Destination register.
        dst: Reg,
        /// Register holding the object pointer.
        obj: Reg,
        /// Field index within the object's struct.
        field: u16,
    },
}

/// A template's terminator: how control transfers to other threads.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// Unconditional transfer within the function.
    Jump {
        /// Target template.
        t: TId,
        /// Registers passed as the target's frame.
        args: Vec<Reg>,
    },
    /// Two-way conditional transfer.
    Branch {
        /// Condition register.
        cond: Reg,
        /// Taken when truthy.
        then_t: TId,
        /// Frame for the then-target.
        then_args: Vec<Reg>,
        /// Taken when falsy.
        else_t: TId,
        /// Frame for the else-target.
        else_args: Vec<Reg>,
    },
    /// Create a dependent thread labeled with the pointer in `ptr`: the
    /// runtime aligns it in M and runs it when the object is available.
    /// This is the *touch* boundary.
    Demand {
        /// Register holding the touched pointer.
        ptr: Reg,
        /// Continuation template (begins with the hoisted loads).
        t: TId,
        /// Frame registers (the touched pointer is passed last).
        args: Vec<Reg>,
    },
    /// Function promotion: invoke `entry` as a child thread; the
    /// continuation runs when it returns, receiving the result appended
    /// to `cont_args`.
    Call {
        /// Callee entry template.
        entry: TId,
        /// Argument registers.
        args: Vec<Reg>,
        /// Continuation template.
        cont: TId,
        /// Saved registers passed through to the continuation.
        cont_args: Vec<Reg>,
    },
    /// `conc` block: spawn every child; the continuation runs at the join
    /// with all child results appended to `cont_args`.
    Fork {
        /// `(entry template, argument registers)` per child.
        children: Vec<(TId, Vec<Reg>)>,
        /// Join-continuation template.
        cont: TId,
        /// Saved registers passed through to the continuation.
        cont_args: Vec<Reg>,
    },
    /// Return from the current function activation.
    Ret(Option<Reg>),
}

/// One non-blocking thread template.
#[derive(Clone, Debug)]
pub struct Template {
    /// Debug name, e.g. `sum#2`.
    pub name: String,
    /// Number of frame registers filled by the caller/creator.
    pub in_args: u16,
    /// Straight-line body.
    pub ops: Vec<Op>,
    /// Scheduling terminator.
    pub term: Term,
    /// `true` when entered via `Demand` (counted as a labeled
    /// thread-creation site in the statistics).
    pub demand_entry: bool,
}

/// Static per-function statistics (the paper's "static threads" table).
#[derive(Clone, Debug, PartialEq)]
pub struct FnStats {
    /// Function name.
    pub name: String,
    /// Templates generated (static non-blocking threads).
    pub templates: u32,
    /// `Demand` sites (pointer-labeled thread-creation sites).
    pub demand_sites: u32,
    /// `Fork` (conc) sites.
    pub fork_sites: u32,
    /// Promoted call sites.
    pub call_sites: u32,
}

/// A struct layout: name plus ordered field names.
#[derive(Clone, Debug)]
pub struct StructLayout {
    /// Struct name.
    pub name: String,
    /// Field names in declaration order.
    pub fields: Vec<String>,
}

impl StructLayout {
    /// Wire size of an object of this layout.
    pub fn size_bytes(&self) -> u32 {
        8 * self.fields.len() as u32 + 16
    }
}

/// A fully compiled program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// All templates across all functions.
    pub templates: Vec<Template>,
    /// Function name → (entry template, arity, returns value?).
    pub functions: Vec<(String, TId, usize, bool)>,
    /// Struct layouts, indexed by object class id.
    pub structs: Vec<StructLayout>,
    /// Per-function static statistics.
    pub stats: Vec<FnStats>,
}

impl CompiledProgram {
    /// Look up a function's `(entry, arity, has_ret)`.
    pub fn function(&self, name: &str) -> Option<(TId, usize, bool)> {
        self.functions
            .iter()
            .find(|(n, _, _, _)| n == name)
            .map(|&(_, t, a, r)| (t, a, r))
    }

    /// Look up a struct class id by name.
    pub fn struct_class(&self, name: &str) -> Option<u8> {
        self.structs
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as u8)
    }

    /// Total static templates (threads) in the program.
    pub fn total_templates(&self) -> usize {
        self.templates.len()
    }

    /// Pretty-print the thread structure (the paper's Figure 7 view).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, t) in self.templates.iter().enumerate() {
            let entry = if t.demand_entry { " [demand-entry]" } else { "" };
            let _ = writeln!(out, "t{i} {}({} in){entry}:", t.name, t.in_args);
            for op in &t.ops {
                let _ = writeln!(out, "    {op:?}");
            }
            let _ = writeln!(out, "    -> {:?}", t.term);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(Value::Int(3).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Float(0.5).truthy());
        assert!(!Value::Ptr(GPtr::NULL).truthy());
        assert!(Value::Ptr(GPtr::new(0, global_heap::ObjClass(0), 1)).truthy());
    }

    #[test]
    fn layout_size() {
        let l = StructLayout {
            name: "Node".into(),
            fields: vec!["a".into(), "b".into(), "c".into()],
        };
        assert_eq!(l.size_bytes(), 40);
    }
}
