//! End-to-end compiler tests: Mini-ICC kernels compiled to pointer-labeled
//! threads and executed over the simulated machine under every runtime
//! variant, validated against host-computed oracles.

use dpa_compiler::{compile_source, IccApp, IccWorldBuilder, Value};
use dpa_core::{run_phase, DpaConfig};
use global_heap::GPtr;
use sim_net::{NetConfig, Rng};
use std::sync::Arc;

/// Recursive binary-tree sum with a conc fork — the paper's Section 3.4
/// example shape.
const TREE_SUM: &str = "
struct T { l: T*; r: T*; v: int; }
fn sum(t: T*) -> int {
  if (t == null) { return 0; }
  let a: int = 0;
  let b: int = 0;
  conc {
    a = sum(t->l);
    b = sum(t->r);
  }
  return a + b + t->v;
}";

/// Iterative list sum (while loop with pointer chasing).
const LIST_SUM: &str = "
struct Node { val: int; next: Node*; }
fn lsum(n: Node*) -> int {
  let acc: int = 0;
  while (n != null) {
    acc = acc + n->val;
    n = n->next;
  }
  return acc;
}";

/// Build a random binary tree of `depth` with nodes scattered over
/// `nodes` owners; returns (root, expected sum).
fn build_tree(
    b: &mut IccWorldBuilder,
    rng: &mut Rng,
    nodes: u16,
    depth: u32,
) -> (Value, i64) {
    if depth == 0 {
        return (Value::Ptr(GPtr::NULL), 0);
    }
    let (l, ls) = build_tree(b, rng, nodes, depth - 1);
    let (r, rs) = build_tree(b, rng, nodes, depth - 1);
    let v = rng.below(1000) as i64;
    let owner = rng.below(nodes as u64) as u16;
    let p = b.alloc(owner, "T", vec![l, r, Value::Int(v)]);
    (Value::Ptr(p), ls + rs + v)
}

fn run_icc(world: &Arc<dpa_compiler::IccWorld>, cfg: DpaConfig) -> (i64, u64) {
    let mut total = 0i64;
    let mut completed = 0u64;
    run_phase(
        world.nodes,
        NetConfig::default(),
        cfg,
        |i| IccApp::new(world.clone(), i),
        |_, app| {
            total = total.wrapping_add(app.int_sum);
            completed += app.completed;
        },
    );
    (total, completed)
}

#[test]
fn tree_sum_all_variants() {
    let prog = compile_source(TREE_SUM).unwrap();
    let nodes = 4u16;
    let mut b = IccWorldBuilder::new(prog, "sum", nodes);
    let mut rng = Rng::new(2024);
    let mut expected = 0i64;
    let mut nroots = 0u64;
    for node in 0..nodes {
        for _ in 0..3 {
            let (root, sum) = build_tree(&mut b, &mut rng, nodes, 5);
            b.add_root(node, vec![root]);
            expected += sum;
            nroots += 1;
        }
    }
    let world = b.build();
    for cfg in [
        DpaConfig::dpa(4),
        DpaConfig::dpa(1),
        DpaConfig::dpa_base(4),
        DpaConfig::caching(),
        DpaConfig::blocking(),
    ] {
        let label = cfg.describe();
        let (total, completed) = run_icc(&world, cfg);
        assert_eq!(total, expected, "{label}");
        assert_eq!(completed, nroots, "{label}");
    }
}

#[test]
fn list_sum_all_variants() {
    let prog = compile_source(LIST_SUM).unwrap();
    let nodes = 3u16;
    let mut b = IccWorldBuilder::new(prog, "lsum", nodes);
    let mut rng = Rng::new(7);
    let mut expected = 0i64;
    for node in 0..nodes {
        for _ in 0..4 {
            // Build a list of 30 records scattered across nodes.
            let mut next = Value::Ptr(GPtr::NULL);
            for _ in 0..30 {
                let v = rng.below(100) as i64;
                expected += v;
                let owner = rng.below(nodes as u64) as u16;
                let p = b.alloc(owner, "Node", vec![Value::Int(v), next]);
                next = Value::Ptr(p);
            }
            b.add_root(node, vec![next]);
        }
    }
    let world = b.build();
    for cfg in [DpaConfig::dpa(8), DpaConfig::caching(), DpaConfig::blocking()] {
        let label = cfg.describe();
        let (total, _) = run_icc(&world, cfg);
        assert_eq!(total, expected, "{label}");
    }
}

#[test]
fn dpa_outperforms_blocking_on_compiled_code() {
    let prog = compile_source(TREE_SUM).unwrap();
    let nodes = 4u16;
    let mut b = IccWorldBuilder::new(prog, "sum", nodes);
    let mut rng = Rng::new(11);
    for node in 0..nodes {
        for _ in 0..4 {
            let (root, _) = build_tree(&mut b, &mut rng, nodes, 6);
            b.add_root(node, vec![root]);
        }
    }
    let world = b.build();

    let time = |cfg: DpaConfig| {
        let report = run_phase(
            nodes,
            NetConfig::default(),
            cfg,
            |i| IccApp::new(world.clone(), i),
            |_, _| {},
        );
        report.makespan().as_ns()
    };
    let t_dpa = time(DpaConfig::dpa(8));
    let t_block = time(DpaConfig::blocking());
    assert!(
        t_dpa < t_block,
        "DPA ({t_dpa} ns) must beat blocking ({t_block} ns) on compiled kernels"
    );
}

#[test]
fn hoist_carry_touches_each_pointer_once() {
    let prog = compile_source(
        "struct P { x: int; y: int; z: int; }
         fn f(a: P*, b: P*) -> int {
           return a->x + b->y + a->z;
         }",
    )
    .unwrap();
    // a touched once, b touched once; a->z reuses the carried hoist.
    assert_eq!(prog.stats[0].demand_sites, 2, "{}", prog.dump());
}

#[test]
fn static_thread_stats_match_structure() {
    let prog = compile_source(TREE_SUM).unwrap();
    let s = &prog.stats[0];
    assert_eq!(s.name, "sum");
    assert_eq!(s.fork_sites, 1);
    assert!(s.templates >= 4);
    // Entry + touch + join + branch arms all materialize as templates.
    assert_eq!(prog.total_templates() as u32, s.templates);
}

#[test]
fn conc_for_with_reductions_end_to_end() {
    // The paper's literal loop shape: a concurrent loop whose body calls
    // a method that touches a remote object and folds a contribution into
    // it (the reduction extension).
    let prog = compile_source(
        "struct Obj { w: float; }
         fn push(o: Obj*, i: int) {
           accum(o, o->w * i);
         }
         fn kernel(o: Obj*, n: int) {
           conc for (i = 0; i < n; i = i + 1) {
             push(o, i);
           }
         }",
    )
    .unwrap();
    // The helper exists and forks.
    let helper = prog
        .stats
        .iter()
        .find(|s| s.name.starts_with("__concfor_"))
        .expect("synthesized helper");
    assert_eq!(helper.fork_sites, 1);
    assert_eq!(helper.call_sites, 1, "base case promotes `push`");

    let nodes = 3u16;
    let mut b = IccWorldBuilder::new(prog, "kernel", nodes);
    let n_iters = 40i64;
    let mut objs = Vec::new();
    for node in 0..nodes {
        // Each object lives on one node; the kernel for it runs on the
        // NEXT node, so every accum crosses the machine.
        let w = 0.5 + node as f64;
        let o = b.alloc(node, "Obj", vec![Value::Float(w)]);
        objs.push((o, w));
        b.add_root((node + 1) % nodes, vec![Value::Ptr(o), Value::Int(n_iters)]);
    }
    let world = b.build();

    let expected_factor: f64 = (0..n_iters).sum::<i64>() as f64;
    for cfg in [DpaConfig::dpa(8), DpaConfig::caching(), DpaConfig::blocking()] {
        let label = cfg.describe();
        let mut updates: std::collections::HashMap<u64, f64> = Default::default();
        run_phase(
            nodes,
            NetConfig::default(),
            cfg,
            |i| IccApp::new(world.clone(), i),
            |_, app: &IccApp| {
                for (k, v) in &app.updates {
                    *updates.entry(*k).or_insert(0.0) += v;
                }
            },
        );
        for &(o, w) in &objs {
            let got = updates.get(&o.bits()).copied().unwrap_or(0.0);
            let want = w * expected_factor;
            assert!(
                (got - want).abs() < 1e-9,
                "{label}: object {o} got {got}, want {want}"
            );
        }
    }
}

#[test]
fn deterministic_compiled_execution() {
    let prog = compile_source(TREE_SUM).unwrap();
    let mk = || {
        let mut b = IccWorldBuilder::new(prog.clone(), "sum", 2);
        let mut rng = Rng::new(5);
        let (root, _) = build_tree(&mut b, &mut rng, 2, 5);
        b.add_root(0, vec![root]);
        b.build()
    };
    let w1 = mk();
    let w2 = mk();
    let r1 = run_phase(
        2,
        NetConfig::default(),
        DpaConfig::dpa(4),
        |i| IccApp::new(w1.clone(), i),
        |_, _| {},
    );
    let r2 = run_phase(
        2,
        NetConfig::default(),
        DpaConfig::dpa(4),
        |i| IccApp::new(w2.clone(), i),
        |_, _| {},
    );
    assert_eq!(r1.makespan(), r2.makespan());
}
