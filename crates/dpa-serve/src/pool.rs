//! The live service: one OS worker thread per sim shard, wrapped around
//! the pure [`Scheduler`].
//!
//! All policy lives in the scheduler; this module only supplies the
//! machinery — a mutex-guarded scheduler, a condvar for the workers, a
//! monotonic epoch clock, and a [`JobRunner`] hook the caller implements
//! (the bench crate's runner drives `bench::dst::run_one`). Submission is
//! synchronous and never blocks on capacity: the scheduler answers
//! [`Admission::Rejected`] immediately when shedding.

use crate::ledger::TenantUsage;
use crate::sched::{LogEntry, SchedConfig, Scheduler};
use crate::types::{Admission, JobId, JobReport, JobSpec, Priority, TenantId};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a shard executes one job. Implementations must be cheap to share
/// (`&self`) — every worker thread calls concurrently.
pub trait JobRunner: Send + Sync {
    /// Run `spec` to completion (or budget exhaustion) and report.
    /// `event_budget` is the resolved per-job cap the run must honor —
    /// a runaway job has to stop with `budget_exhausted`, not spin.
    /// `wall_budget_ns` is the tenant's remaining wall-clock budget at
    /// placement time (`None` when unconfigured): a run that outlives it
    /// must stop at the next phase boundary with `budget_exhausted` so
    /// the shard is reclaimed and the overrun billed, never silently
    /// absorbed.
    fn run(&self, spec: &JobSpec, event_budget: u64, wall_budget_ns: Option<u64>) -> JobReport;
}

/// One unit of work handed to a shard worker:
/// `(job, spec, event_budget, wall_budget_ns)`.
type WorkItem = (JobId, JobSpec, u64, Option<u64>);

struct State {
    sched: Scheduler,
    /// Specs of queued + running jobs.
    specs: BTreeMap<u64, JobSpec>,
    /// Work handed to each shard's worker, not yet picked up.
    work: Vec<Option<WorkItem>>,
    /// Log length already scanned for placements.
    cursor: usize,
    /// Reports of finished jobs.
    reports: BTreeMap<u64, JobReport>,
    stop: bool,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    runner: Box<dyn JobRunner>,
    epoch: Instant,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Hand every placement logged since `cursor` to its shard's worker.
    /// Called under the lock after any scheduler call that can place.
    fn sync_placements(&self, st: &mut State) {
        let mut assign = Vec::new();
        {
            let log = st.sched.log();
            for e in &log[st.cursor..] {
                if let LogEntry::Place { job, shard, .. } = e {
                    assign.push((*job, *shard));
                }
            }
            st.cursor = log.len();
        }
        for (job, shard) in assign {
            let spec = st.specs[&job.0].clone();
            let budget = st.sched.resolve_event_budget(&spec);
            let wall = st.sched.resolve_wall_budget(&spec);
            debug_assert!(st.work[shard].is_none(), "shard {shard} double-assigned");
            st.work[shard] = Some((job, spec, budget, wall));
        }
    }
}

/// One finished job with its end-to-end timings, derived from the
/// decision log at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// The job.
    pub job: JobId,
    /// Billed tenant.
    pub tenant: TenantId,
    /// Lane it ran in.
    pub priority: Priority,
    /// Admission-to-placement wait.
    pub wait_ns: u64,
    /// Admission-to-finish latency (the per-tenant SLO metric).
    pub latency_ns: u64,
    /// The shard's report.
    pub report: JobReport,
}

/// Everything a drained service hands back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReport {
    /// The scheduler's full decision log.
    pub log: Vec<LogEntry>,
    /// One record per finished job, in job-id order.
    pub jobs: Vec<JobRecord>,
    /// Final per-tenant accounts, in tenant order.
    pub ledger: Vec<(TenantId, TenantUsage)>,
}

/// A running shard pool. Create with [`Service::start`], feed with
/// [`Service::submit`], and end with [`Service::shutdown`] (drains, then
/// joins the workers).
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Spin up `cfg.shards` worker threads around a fresh scheduler.
    pub fn start(cfg: SchedConfig, runner: impl JobRunner + 'static) -> Service {
        let shards = cfg.shards;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                sched: Scheduler::new(cfg),
                specs: BTreeMap::new(),
                work: (0..shards).map(|_| None).collect(),
                cursor: 0,
                reports: BTreeMap::new(),
                stop: false,
            }),
            cv: Condvar::new(),
            runner: Box::new(runner),
            epoch: Instant::now(),
        });
        let workers = (0..shards)
            .map(|shard| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dpa-shard-{shard}"))
                    .spawn(move || worker(inner, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        Service { inner, workers }
    }

    /// Offer a job. Answers synchronously — accepted jobs run on the
    /// pool; shed jobs get a structured reason, never a hang.
    pub fn submit(&self, spec: JobSpec) -> Admission {
        let mut st = self.inner.state.lock().expect("service lock");
        let now = self.inner.now_ns();
        let adm = st.sched.submit(now, &spec);
        if let Admission::Accepted(job) = adm {
            st.specs.insert(job.0, spec);
        }
        self.inner.sync_placements(&mut st);
        drop(st);
        self.inner.cv.notify_all();
        adm
    }

    /// Snapshot of `(interactive depth, batch depth, busy shards)` — the
    /// overload tests poll this to assert boundedness while the burst is
    /// in flight.
    pub fn load(&self) -> (usize, usize, usize) {
        let st = self.inner.state.lock().expect("service lock");
        (
            st.sched.queue_depth(Priority::Interactive),
            st.sched.queue_depth(Priority::Batch),
            st.sched.busy_shards(),
        )
    }

    /// Stop admitting, drain every queued and running job, join the
    /// workers, and hand back the decision log, per-job records, and the
    /// final ledger.
    pub fn shutdown(self) -> ServiceReport {
        {
            let mut st = self.inner.state.lock().expect("service lock");
            st.sched.drain();
            while !st.sched.idle() {
                st = self.inner.cv.wait(st).expect("service lock");
            }
            st.stop = true;
        }
        self.inner.cv.notify_all();
        for w in self.workers {
            w.join().expect("shard worker panicked");
        }
        let mut st = self.inner.state.lock().expect("service lock");
        let log = st.sched.take_log();
        let jobs = job_records(&log, &st.reports);
        let ledger = st.sched.ledger().iter().map(|(t, u)| (t, u.clone())).collect();
        ServiceReport { log, jobs, ledger }
    }
}

fn worker(inner: Arc<Inner>, shard: usize) {
    loop {
        let (job, spec, budget, wall) = {
            let mut st = inner.state.lock().expect("service lock");
            loop {
                if let Some(w) = st.work[shard].take() {
                    break w;
                }
                if st.stop {
                    return;
                }
                st = inner.cv.wait(st).expect("service lock");
            }
        };
        let t0 = Instant::now();
        let mut report = inner.runner.run(&spec, budget, wall);
        report.wall_ns = t0.elapsed().as_nanos() as u64;
        let mut st = inner.state.lock().expect("service lock");
        let now = inner.now_ns();
        st.sched.complete(now, shard, &report);
        st.reports.insert(job.0, report);
        st.specs.remove(&job.0);
        inner.sync_placements(&mut st);
        drop(st);
        inner.cv.notify_all();
    }
}

/// Join the decision log with the shard reports into per-job records.
fn job_records(log: &[LogEntry], reports: &BTreeMap<u64, JobReport>) -> Vec<JobRecord> {
    struct Times {
        tenant: TenantId,
        priority: Priority,
        admit_ns: u64,
        place_ns: u64,
        finish_ns: u64,
    }
    let mut times: BTreeMap<u64, Times> = BTreeMap::new();
    for e in log {
        match e {
            LogEntry::Admit { now_ns, job, tenant, priority, .. } => {
                times.insert(
                    job.0,
                    Times {
                        tenant: *tenant,
                        priority: *priority,
                        admit_ns: *now_ns,
                        place_ns: 0,
                        finish_ns: 0,
                    },
                );
            }
            LogEntry::Place { now_ns, job, .. } => {
                if let Some(t) = times.get_mut(&job.0) {
                    t.place_ns = *now_ns;
                }
            }
            LogEntry::Finish { now_ns, job, .. } => {
                if let Some(t) = times.get_mut(&job.0) {
                    t.finish_ns = *now_ns;
                }
            }
            LogEntry::Reject { .. } => {}
        }
    }
    times
        .into_iter()
        .filter_map(|(id, t)| {
            let report = reports.get(&id)?.clone();
            Some(JobRecord {
                job: JobId(id),
                tenant: t.tenant,
                priority: t.priority,
                wait_ns: t.place_ns.saturating_sub(t.admit_ns),
                latency_ns: t.finish_ns.saturating_sub(t.admit_ns),
                report,
            })
        })
        .collect()
}
