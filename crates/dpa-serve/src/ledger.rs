//! Per-tenant accounting: admission counters plus metered usage.
//!
//! The ledger is a plain ordered map so iteration (and therefore every
//! report derived from it) is deterministic. It records, it does not
//! decide — budget *enforcement* lives in the scheduler, which consults
//! [`TenantLedger::usage`] at admission time.

use crate::types::{JobReport, TenantId};
use std::collections::BTreeMap;

/// Everything billed to one tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Total submissions (accepted + rejected).
    pub submitted: u64,
    /// Submissions admitted to a queue.
    pub accepted: u64,
    /// Submissions shed with a structured reason.
    pub rejected: u64,
    /// Jobs that ran to quiescence.
    pub completed: u64,
    /// Jobs reaped on event-budget exhaustion.
    pub reaped: u64,
    /// Jobs that stalled for another reason (e.g. lossy fault plan).
    pub stalled: u64,
    /// Jobs currently queued or running.
    pub outstanding: u64,
    /// Simulator events billed across all finished jobs.
    pub sim_events: u64,
    /// Wall-clock nanoseconds billed across all finished jobs.
    pub wall_ns: u64,
    /// Alignment-request messages billed (PR-2 per-path stats).
    pub request_msgs: u64,
    /// Reply messages billed.
    pub reply_msgs: u64,
    /// Update messages billed.
    pub update_msgs: u64,
}

/// The service's account book, keyed by tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantLedger {
    accounts: BTreeMap<TenantId, TenantUsage>,
}

impl TenantLedger {
    /// Fresh, empty ledger.
    pub fn new() -> TenantLedger {
        TenantLedger::default()
    }

    /// Current usage for `tenant` (zeroes when unseen).
    pub fn usage(&self, tenant: TenantId) -> TenantUsage {
        self.accounts.get(&tenant).cloned().unwrap_or_default()
    }

    fn entry(&mut self, tenant: TenantId) -> &mut TenantUsage {
        self.accounts.entry(tenant).or_default()
    }

    /// Record an admitted submission.
    pub fn note_admit(&mut self, tenant: TenantId) {
        let u = self.entry(tenant);
        u.submitted += 1;
        u.accepted += 1;
        u.outstanding += 1;
    }

    /// Record a shed submission.
    pub fn note_reject(&mut self, tenant: TenantId) {
        let u = self.entry(tenant);
        u.submitted += 1;
        u.rejected += 1;
    }

    /// Record a finished job and bill its usage.
    pub fn note_finish(&mut self, tenant: TenantId, report: &JobReport) {
        let u = self.entry(tenant);
        debug_assert!(u.outstanding > 0, "finish without outstanding job");
        u.outstanding = u.outstanding.saturating_sub(1);
        if report.completed {
            u.completed += 1;
        } else if report.budget_exhausted {
            u.reaped += 1;
        } else {
            u.stalled += 1;
        }
        u.sim_events += report.sim_events;
        u.wall_ns += report.wall_ns;
        u.request_msgs += report.request_msgs;
        u.reply_msgs += report.reply_msgs;
        u.update_msgs += report.update_msgs;
    }

    /// Deterministic (tenant-ordered) iteration over all accounts.
    pub fn iter(&self) -> impl Iterator<Item = (TenantId, &TenantUsage)> {
        self.accounts.iter().map(|(t, u)| (*t, u))
    }

    /// Number of tenants with any recorded activity.
    pub fn tenants(&self) -> usize {
        self.accounts.len()
    }
}
