//! Seeded load generator and closed-loop scheduler model.
//!
//! [`gen_arrivals`] turns `(profile, seed)` into a deterministic arrival
//! stream; [`run_model`] drives a [`Scheduler`] with it under synthetic
//! service times, producing the decision log the invariant checkers
//! ([`check_conservation`], [`check_no_starvation`], [`check_depth_bound`])
//! audit. Everything is a pure function of its inputs, so the proptests
//! can assert replay identity and the corpus can pin scheduler bugs as
//! `service-*.case` files naming a [`SCENARIOS`] entry plus a seed.

use crate::sched::{LogEntry, SchedConfig, Scheduler};
use crate::types::{Admission, JobId, JobSpec, Priority, TenantId};
use sim_net::Rng;
use std::collections::BTreeMap;

/// Shape of a synthetic load: how many tenants, how fast they submit,
/// how long jobs run, and how often a job "goes bad" (stalls until its
/// event budget reaps it).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Distinct tenants, ids `0..tenants`.
    pub tenants: u16,
    /// Total submissions to generate.
    pub jobs: usize,
    /// Probability a job is interactive (vs batch).
    pub interactive_ratio: f64,
    /// Mean gap between arrivals; actual gaps are uniform in
    /// `0..=2*mean_gap_ns`.
    pub mean_gap_ns: u64,
    /// Shortest synthetic service time.
    pub service_min_ns: u64,
    /// Longest synthetic service time.
    pub service_max_ns: u64,
    /// Probability a job stalls and is reaped on budget exhaustion.
    pub fault_ratio: f64,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            tenants: 4,
            jobs: 200,
            interactive_ratio: 0.6,
            mean_gap_ns: 400_000,
            service_min_ns: 200_000,
            service_max_ns: 3_000_000,
            fault_ratio: 0.0,
        }
    }
}

/// One generated submission: when it lands, what it asks for, and how the
/// model will pretend the run went.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Arrival time on the model clock.
    pub at_ns: u64,
    /// The request.
    pub spec: JobSpec,
    /// Synthetic shard-occupancy time if placed.
    pub service_ns: u64,
    /// Whether the synthetic run stalls (reported `budget_exhausted`).
    pub stall: bool,
}

/// Deterministically expand `(profile, seed)` into an arrival stream.
pub fn gen_arrivals(profile: &LoadProfile, seed: u64) -> Vec<Arrival> {
    assert!(profile.tenants >= 1 && profile.jobs >= 1);
    assert!(profile.service_min_ns <= profile.service_max_ns);
    let mut rng = Rng::new(seed ^ 0x5EE0_57AF_F1C0_FFEE);
    let mut at_ns = 0u64;
    let span = profile.service_max_ns - profile.service_min_ns;
    (0..profile.jobs)
        .map(|i| {
            at_ns += rng.below(2 * profile.mean_gap_ns + 1);
            let interactive = rng.chance(profile.interactive_ratio);
            let stall = rng.chance(profile.fault_ratio);
            Arrival {
                at_ns,
                spec: JobSpec {
                    tenant: TenantId(rng.below(profile.tenants as u64) as u16),
                    priority: if interactive {
                        Priority::Interactive
                    } else {
                        Priority::Batch
                    },
                    workload: format!("model-{i}"),
                    seed: rng.next_u64(),
                    plan: if stall { "drop" } else { "none" }.to_string(),
                    event_budget: 0,
                },
                // Floor of 1ns keeps per-shard completion keys strictly
                // increasing (one job per shard at a time).
                service_ns: (profile.service_min_ns + rng.below(span + 1)).max(1),
                stall,
            }
        })
        .collect()
}

/// Everything a model run produces, for the checkers and the proptests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRun {
    /// The scheduler's full decision log.
    pub log: Vec<LogEntry>,
    /// Submissions admitted.
    pub accepted: usize,
    /// Submissions shed.
    pub rejected: usize,
    /// High-water queue depth per lane (`[interactive, batch]`).
    pub max_depth: [usize; 2],
    /// Jobs that finished (completed or reaped).
    pub finished: usize,
    /// Model clock when the last job finished.
    pub end_ns: u64,
}

/// Drive a fresh [`Scheduler`] with `arrivals` under synthetic service
/// times. A placed job occupies its shard for the arrival's `service_ns`
/// and finishes `completed` unless the arrival stalls, in which case it
/// finishes `budget_exhausted` (reaped). Completions are processed in
/// `(end time, shard)` order, before any arrival at the same instant —
/// a fixed, documented tiebreak so the run is replay-identical.
pub fn run_model(cfg: &SchedConfig, arrivals: &[Arrival]) -> ModelRun {
    let mut sched = Scheduler::new(cfg.clone());
    // Pending completions, keyed for deterministic pop order.
    let mut completions: BTreeMap<(u64, usize), (JobId, bool)> = BTreeMap::new();
    // JobId -> (service_ns, stall), captured at admission.
    let mut jobinfo: BTreeMap<u64, (u64, bool)> = BTreeMap::new();
    let mut cursor = 0usize;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut finished = 0usize;
    let mut max_depth = [0usize; 2];
    let mut end_ns = 0u64;

    // Absorb new Place entries since `cursor`: schedule their completions.
    fn sync(
        sched: &Scheduler,
        cursor: &mut usize,
        jobinfo: &BTreeMap<u64, (u64, bool)>,
        completions: &mut BTreeMap<(u64, usize), (JobId, bool)>,
    ) {
        let log = sched.log();
        for entry in &log[*cursor..] {
            if let LogEntry::Place { now_ns, job, shard, .. } = entry {
                let (service_ns, stall) = jobinfo[&job.0];
                let prev = completions.insert((now_ns + service_ns, *shard), (*job, stall));
                assert!(prev.is_none(), "two jobs on shard {shard} end at once");
            }
        }
        *cursor = log.len();
    }

    let fire = |sched: &mut Scheduler,
                    completions: &mut BTreeMap<(u64, usize), (JobId, bool)>,
                    cursor: &mut usize,
                    jobinfo: &BTreeMap<u64, (u64, bool)>,
                    upto_ns: u64,
                    finished: &mut usize,
                    end_ns: &mut u64| {
        while let Some((&(at, shard), &(job, stall))) = completions.iter().next() {
            if at > upto_ns {
                break;
            }
            completions.remove(&(at, shard));
            let report = synthetic_report(job, stall);
            sched.complete(at, shard, &report);
            *finished += 1;
            *end_ns = (*end_ns).max(at);
            sync(sched, cursor, jobinfo, completions);
        }
    };

    for a in arrivals {
        fire(
            &mut sched,
            &mut completions,
            &mut cursor,
            &jobinfo,
            a.at_ns,
            &mut finished,
            &mut end_ns,
        );
        match sched.submit(a.at_ns, &a.spec) {
            Admission::Accepted(job) => {
                accepted += 1;
                jobinfo.insert(job.0, (a.service_ns, a.stall));
            }
            Admission::Rejected { .. } => rejected += 1,
        }
        sync(&sched, &mut cursor, &jobinfo, &mut completions);
        for p in Priority::ALL {
            max_depth[p.lane()] = max_depth[p.lane()].max(sched.queue_depth(p));
        }
    }
    fire(
        &mut sched,
        &mut completions,
        &mut cursor,
        &jobinfo,
        u64::MAX,
        &mut finished,
        &mut end_ns,
    );
    // No idle assert here: a scheduler that leaks a queued or running job
    // leaves the machine non-idle at drain, and the conservation checker
    // reports exactly which jobs leaked — a structured verdict the corpus
    // replayer can print, where an assert would just abort.
    ModelRun {
        log: sched.take_log(),
        accepted,
        rejected,
        max_depth,
        finished,
        end_ns,
    }
}

/// The report the model synthesizes for a finished job: a clean
/// completion, or a budget-exhaustion stall for a stalling arrival.
fn synthetic_report(job: JobId, stall: bool) -> crate::types::JobReport {
    crate::types::JobReport {
        completed: !stall,
        budget_exhausted: stall,
        sim_events: 1_000 + job.0,
        sim_makespan_ns: 0,
        request_msgs: 10,
        reply_msgs: 10,
        update_msgs: 5,
        violations: 0,
        wall_ns: 1_000,
        stall: if stall { "budget_exhausted".into() } else { String::new() },
    }
}

// ------------------------------------------------------------- invariants

/// Conservation: every admitted job is placed exactly once and finished
/// exactly once — nothing is lost, duplicated, or conjured. Returns
/// violation strings (empty = clean). Mirror of the `ReplyPathLeak`
/// oracle style: phrased over the log, not the implementation.
pub fn check_conservation(log: &[LogEntry]) -> Vec<String> {
    let mut v = Vec::new();
    let mut admitted: BTreeMap<u64, u32> = BTreeMap::new();
    let mut placed: BTreeMap<u64, u32> = BTreeMap::new();
    let mut finished: BTreeMap<u64, u32> = BTreeMap::new();
    for e in log {
        match e {
            LogEntry::Admit { job, .. } => *admitted.entry(job.0).or_default() += 1,
            LogEntry::Place { job, .. } => *placed.entry(job.0).or_default() += 1,
            LogEntry::Finish { job, .. } => *finished.entry(job.0).or_default() += 1,
            LogEntry::Reject { .. } => {}
        }
    }
    for (&job, &n) in &admitted {
        if n != 1 {
            v.push(format!("job {job} admitted {n} times"));
        }
        match placed.get(&job) {
            // Only a placed job can be expected to finish.
            Some(1) => match finished.get(&job) {
                Some(1) => {}
                Some(n) => v.push(format!("job {job} finished {n} times")),
                None => v.push(format!("job {job} placed but never finished (leaked on shard)")),
            },
            Some(n) => v.push(format!("job {job} placed {n} times")),
            None => v.push(format!("job {job} admitted but never placed (leaked in queue)")),
        }
    }
    for &job in placed.keys() {
        if !admitted.contains_key(&job) {
            v.push(format!("job {job} placed without admission"));
        }
    }
    for &job in finished.keys() {
        if !placed.contains_key(&job) {
            v.push(format!("job {job} finished without placement"));
        }
    }
    v
}

/// No-starvation: an interactive job is never placed while the batch head
/// is over-age *and* batch had headroom under its concurrency cap — the
/// aging rule must win that pick. Audited from the decision inputs frozen
/// into each [`LogEntry::Place`].
pub fn check_no_starvation(log: &[LogEntry], cfg: &SchedConfig) -> Vec<String> {
    let mut v = Vec::new();
    for e in log {
        if let LogEntry::Place {
            job,
            priority: Priority::Interactive,
            batch_head_age_ns,
            batch_running,
            batch_cap,
            ..
        } = e
        {
            if *batch_head_age_ns >= cfg.aging_ns && batch_running < batch_cap {
                v.push(format!(
                    "interactive job {} picked over a batch head aged {}ns \
                     (aging_ns={}, batch {}/{} running)",
                    job.0, batch_head_age_ns, cfg.aging_ns, batch_running, batch_cap
                ));
            }
        }
    }
    v
}

/// Bounded queues: no admission may record a lane depth beyond
/// `queue_cap`, and the effective batch cap frozen into placements must
/// respect the degradation floor of 1.
pub fn check_depth_bound(log: &[LogEntry], cfg: &SchedConfig) -> Vec<String> {
    let mut v = Vec::new();
    for e in log {
        match e {
            LogEntry::Admit { job, depth, .. } if *depth > cfg.queue_cap => {
                v.push(format!(
                    "job {} admitted at depth {depth} > cap {}",
                    job.0, cfg.queue_cap
                ));
            }
            LogEntry::Place { job, batch_cap, .. } if *batch_cap == 0 => {
                v.push(format!("job {} placed under batch_cap 0 (floor is 1)", job.0));
            }
            _ => {}
        }
    }
    v
}

// ---------------------------------------------------------------- corpus

/// Named `(config, profile)` pairs the `service-*.case` corpus can refer
/// to — a case names a scenario plus a seed instead of embedding knobs.
pub const SCENARIOS: &[&str] = &["burst", "starve", "degrade", "faulty"];

/// Resolve a [`SCENARIOS`] name.
pub fn scenario(name: &str) -> Option<(SchedConfig, LoadProfile)> {
    let cfg = SchedConfig::default();
    match name {
        // 10x-capacity burst: arrivals much faster than service drain.
        "burst" => Some((
            SchedConfig { queue_cap: 16, ..cfg },
            LoadProfile {
                jobs: 400,
                mean_gap_ns: 40_000,
                ..LoadProfile::default()
            },
        )),
        // Sustained interactive pressure over a trickle of batch jobs:
        // the aging rule is the only thing keeping batch alive.
        "starve" => Some((
            SchedConfig {
                interactive_weight: 50,
                batch_weight: 1,
                aging_ns: 2_000_000,
                ..cfg
            },
            LoadProfile {
                jobs: 600,
                interactive_ratio: 0.95,
                mean_gap_ns: 100_000,
                ..LoadProfile::default()
            },
        )),
        // Interactive floods past degrade_depth so the batch cap shrinks.
        "degrade" => Some((
            SchedConfig {
                degrade_depth: 2,
                queue_cap: 32,
                ..cfg
            },
            LoadProfile {
                jobs: 500,
                interactive_ratio: 0.8,
                mean_gap_ns: 60_000,
                ..LoadProfile::default()
            },
        )),
        // A slice of jobs stall and must be reaped, not leaked.
        "faulty" => Some((
            cfg,
            LoadProfile {
                jobs: 300,
                fault_ratio: 0.15,
                mean_gap_ns: 150_000,
                ..LoadProfile::default()
            },
        )),
        _ => None,
    }
}

/// Replay one scenario under `seed` and audit every invariant, including
/// replay identity (the run is executed twice and the logs compared).
/// Returns the violations found (empty = clean); `Err` for an unknown
/// scenario name.
pub fn replay_scenario(name: &str, seed: u64) -> Result<Vec<String>, String> {
    let (cfg, profile) =
        scenario(name).ok_or_else(|| format!("unknown scenario {name:?} (expected one of {SCENARIOS:?})"))?;
    let arrivals = gen_arrivals(&profile, seed);
    let run = run_model(&cfg, &arrivals);
    let rerun = run_model(&cfg, &arrivals);
    let mut violations = Vec::new();
    if run != rerun {
        violations.push("replay diverged: same (config, arrivals) gave a different log".into());
    }
    violations.extend(check_conservation(&run.log));
    violations.extend(check_no_starvation(&run.log, &cfg));
    violations.extend(check_depth_bound(&run.log, &cfg));
    Ok(violations)
}
