//! The shard-pool scheduler: a *pure, seed-free* state machine.
//!
//! Every decision — admit, reject, place, finish — is a deterministic
//! function of the configuration and the sequence of
//! [`Scheduler::submit`]/[`Scheduler::complete`] calls (each stamped with
//! a caller-supplied clock). There is no internal randomness, no hash-map
//! iteration, no wall clock: feed the same arrival stream twice and the
//! decision [`log`](Scheduler::log) is bit-identical. That is the same
//! discipline `stripctl` follows, and it is what makes the scheduler
//! proptest-able and corpus-replayable (see [`crate::model`]).
//!
//! Policy, in decision order:
//! 1. **Admission control** — a draining service, a tenant over any
//!    budget, or a full lane queue sheds the job *immediately* with a
//!    structured [`RejectReason`]; a caller is never left hanging.
//! 2. **Degradation before shedding** — when the interactive queue grows
//!    past [`SchedConfig::degrade_depth`], the number of shards batch may
//!    occupy shrinks one per excess entry (floor 1), so overload squeezes
//!    batch concurrency *before* interactive submissions start bouncing
//!    off their queue cap.
//! 3. **Weighted pick with aging** — a free shard takes the lane chosen
//!    by smooth weighted round-robin
//!    ([`SchedConfig::interactive_weight`] :
//!    [`SchedConfig::batch_weight`]), except that a batch head older than
//!    [`SchedConfig::aging_ns`] is served first whenever batch is under
//!    its concurrency cap — the no-starvation guarantee the proptests
//!    pin.

use crate::ledger::TenantLedger;
use crate::types::{Admission, JobId, JobReport, JobSpec, Priority, RejectReason, TenantId};
use std::collections::VecDeque;

/// Scheduler knobs. Everything is explicit — the scheduler reads no
/// environment and rolls no dice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedConfig {
    /// Number of sim shards (the pool's concurrency).
    pub shards: usize,
    /// Per-lane bounded queue capacity; a submission to a full lane is
    /// shed with [`RejectReason::QueueFull`].
    pub queue_cap: usize,
    /// Weighted-pick share for the interactive lane.
    pub interactive_weight: u32,
    /// Weighted-pick share for the batch lane.
    pub batch_weight: u32,
    /// A batch head queued longer than this is served before any
    /// interactive job (while batch is under its concurrency cap).
    pub aging_ns: u64,
    /// Most shards batch may occupy when the service is healthy
    /// (clamped to `shards`).
    pub batch_shard_cap: usize,
    /// Interactive queue depth at which batch concurrency starts
    /// shrinking (one shard per excess entry, floor 1).
    pub degrade_depth: usize,
    /// Max queued + running jobs per tenant.
    pub tenant_outstanding_cap: u64,
    /// Lifetime simulated-event budget per tenant (`u64::MAX` = unmetered).
    pub tenant_event_budget: u64,
    /// Lifetime wall-clock budget per tenant (`u64::MAX` = unmetered).
    pub tenant_wall_budget_ns: u64,
    /// Default per-job event budget applied when a [`JobSpec`] asks for
    /// `0`; runs hitting it stop with a structured `budget_exhausted`
    /// stall and are reaped.
    pub job_event_budget: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            shards: 4,
            queue_cap: 64,
            interactive_weight: 3,
            batch_weight: 1,
            aging_ns: 50_000_000,
            batch_shard_cap: 4,
            degrade_depth: 8,
            tenant_outstanding_cap: 32,
            tenant_event_budget: u64::MAX,
            tenant_wall_budget_ns: u64::MAX,
            job_event_budget: 20_000_000,
        }
    }
}

/// One decision, as recorded in the scheduler's append-only log. The log
/// *is* the scheduler's observable behavior: replay identity, conservation
/// and no-starvation are all phrased over it (see [`crate::model`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntry {
    /// A submission entered a lane queue.
    Admit {
        /// Caller clock at admission.
        now_ns: u64,
        /// Assigned job id.
        job: JobId,
        /// Billed tenant.
        tenant: TenantId,
        /// Lane admitted to.
        priority: Priority,
        /// Lane depth *after* the push.
        depth: usize,
    },
    /// A submission was shed.
    Reject {
        /// Caller clock at the decision.
        now_ns: u64,
        /// Tenant that was turned away.
        tenant: TenantId,
        /// Lane it asked for.
        priority: Priority,
        /// Structured reason.
        reason: RejectReason,
    },
    /// A queued job took a free shard. The three `batch_*` fields freeze
    /// the inputs of the pick decision so the no-starvation oracle can
    /// audit it after the fact.
    Place {
        /// Caller clock at placement.
        now_ns: u64,
        /// Placed job.
        job: JobId,
        /// Shard index it runs on.
        shard: usize,
        /// Its lane.
        priority: Priority,
        /// Time it spent queued.
        wait_ns: u64,
        /// Age of the batch head at the decision (0 when batch was empty).
        batch_head_age_ns: u64,
        /// Batch jobs running *before* this placement.
        batch_running: usize,
        /// Effective batch concurrency cap at the decision (post-degradation).
        batch_cap: usize,
    },
    /// A shard finished (or reaped) its job.
    Finish {
        /// Caller clock at completion.
        now_ns: u64,
        /// Finished job.
        job: JobId,
        /// Shard that ran it.
        shard: usize,
        /// Whether the run reached quiescence.
        completed: bool,
        /// Whether it was stopped on event-budget exhaustion.
        reaped: bool,
    },
}

#[derive(Debug, Clone)]
struct Queued {
    job: JobId,
    tenant: TenantId,
    admitted_ns: u64,
}

#[derive(Debug, Clone)]
struct Running {
    job: JobId,
    tenant: TenantId,
    priority: Priority,
}

/// The pure scheduler. See the [module docs](crate::sched) for the policy.
#[derive(Debug, Clone)]
pub struct Scheduler {
    cfg: SchedConfig,
    queues: [VecDeque<Queued>; 2],
    shards: Vec<Option<Running>>,
    /// Smooth-WRR credit per lane.
    credit: [i64; 2],
    batch_running: usize,
    ledger: TenantLedger,
    log: Vec<LogEntry>,
    next_job: u64,
    draining: bool,
}

impl Scheduler {
    /// Fresh scheduler over `cfg.shards` idle shards.
    pub fn new(cfg: SchedConfig) -> Scheduler {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.queue_cap >= 1, "need a non-degenerate queue");
        assert!(
            cfg.interactive_weight >= 1 && cfg.batch_weight >= 1,
            "lane weights must be positive"
        );
        let shards = vec![None; cfg.shards];
        Scheduler {
            cfg,
            queues: [VecDeque::new(), VecDeque::new()],
            shards,
            credit: [0, 0],
            batch_running: 0,
            ledger: TenantLedger::new(),
            log: Vec::new(),
            next_job: 0,
            draining: false,
        }
    }

    /// Offer a job at caller time `now_ns`. Returns synchronously with an
    /// [`Admission`]; on acceptance the dispatch loop runs, so the job may
    /// already be placed (check [`Scheduler::log`]). `now_ns` must be
    /// monotone across calls.
    pub fn submit(&mut self, now_ns: u64, spec: &JobSpec) -> Admission {
        if let Some(reason) = self.admission_veto(spec) {
            self.ledger.note_reject(spec.tenant);
            self.log.push(LogEntry::Reject {
                now_ns,
                tenant: spec.tenant,
                priority: spec.priority,
                reason: reason.clone(),
            });
            return Admission::Rejected { reason };
        }
        let job = JobId(self.next_job);
        self.next_job += 1;
        let lane = spec.priority.lane();
        self.queues[lane].push_back(Queued {
            job,
            tenant: spec.tenant,
            admitted_ns: now_ns,
        });
        self.ledger.note_admit(spec.tenant);
        self.log.push(LogEntry::Admit {
            now_ns,
            job,
            tenant: spec.tenant,
            priority: spec.priority,
            depth: self.queues[lane].len(),
        });
        self.dispatch(now_ns);
        Admission::Accepted(job)
    }

    fn admission_veto(&self, spec: &JobSpec) -> Option<RejectReason> {
        if self.draining {
            return Some(RejectReason::ShuttingDown);
        }
        let u = self.ledger.usage(spec.tenant);
        if u.outstanding >= self.cfg.tenant_outstanding_cap {
            return Some(RejectReason::TenantOutstanding {
                outstanding: u.outstanding,
                cap: self.cfg.tenant_outstanding_cap,
            });
        }
        if u.sim_events >= self.cfg.tenant_event_budget {
            return Some(RejectReason::TenantEventBudget {
                spent: u.sim_events,
                budget: self.cfg.tenant_event_budget,
            });
        }
        if u.wall_ns >= self.cfg.tenant_wall_budget_ns {
            return Some(RejectReason::TenantWallBudget {
                spent_ns: u.wall_ns,
                budget_ns: self.cfg.tenant_wall_budget_ns,
            });
        }
        let lane = spec.priority.lane();
        if self.queues[lane].len() >= self.cfg.queue_cap {
            return Some(RejectReason::QueueFull {
                lane: spec.priority,
                depth: self.queues[lane].len(),
                cap: self.cfg.queue_cap,
            });
        }
        None
    }

    /// Report the job on `shard` finished at caller time `now_ns`, bill
    /// the tenant, and refill the shard from the queues. Returns the
    /// finished job's id. Panics if the shard is idle (a service bug, not
    /// a load condition).
    pub fn complete(&mut self, now_ns: u64, shard: usize, report: &JobReport) -> JobId {
        let running = self.shards[shard]
            .take()
            .unwrap_or_else(|| panic!("complete on idle shard {shard}"));
        if running.priority == Priority::Batch {
            self.batch_running -= 1;
        }
        self.ledger.note_finish(running.tenant, report);
        self.log.push(LogEntry::Finish {
            now_ns,
            job: running.job,
            shard,
            completed: report.completed,
            reaped: report.budget_exhausted,
        });
        self.dispatch(now_ns);
        running.job
    }

    /// Effective batch concurrency cap right now: the configured cap,
    /// shrunk one shard per interactive queue entry beyond
    /// `degrade_depth`, floored at 1 so aging can always drain batch.
    pub fn effective_batch_cap(&self) -> usize {
        let cap = self.cfg.batch_shard_cap.min(self.cfg.shards).max(1);
        let depth = self.queues[Priority::Interactive.lane()].len();
        if depth <= self.cfg.degrade_depth {
            cap
        } else {
            cap.saturating_sub(depth - self.cfg.degrade_depth).max(1)
        }
    }

    /// Fill free shards from the queues until neither lane is pickable.
    fn dispatch(&mut self, now_ns: u64) {
        while let Some(shard) = self.shards.iter().position(Option::is_none) {
            let cap = self.effective_batch_cap();
            let int_ready = !self.queues[0].is_empty();
            let bat_ready = !self.queues[1].is_empty() && self.batch_running < cap;
            let head_age = self.queues[1]
                .front()
                .map(|q| now_ns.saturating_sub(q.admitted_ns))
                .unwrap_or(0);
            let lane = match (int_ready, bat_ready) {
                (false, false) => break,
                (true, false) => 0,
                (false, true) => 1,
                // Aging first: an over-age batch head beats the weights.
                (true, true) if head_age >= self.cfg.aging_ns => 1,
                (true, true) => self.weighted_pick(),
            };
            let q = self.queues[lane].pop_front().expect("lane checked nonempty");
            let priority = Priority::ALL[lane];
            self.log.push(LogEntry::Place {
                now_ns,
                job: q.job,
                shard,
                priority,
                wait_ns: now_ns.saturating_sub(q.admitted_ns),
                batch_head_age_ns: head_age,
                batch_running: self.batch_running,
                batch_cap: cap,
            });
            if priority == Priority::Batch {
                self.batch_running += 1;
            }
            self.shards[shard] = Some(Running {
                job: q.job,
                tenant: q.tenant,
                priority,
            });
        }
    }

    /// Smooth weighted round-robin between the two (both-ready) lanes:
    /// each lane earns its weight, the richer lane is picked (interactive
    /// on ties) and pays the total. Deterministic, bounded credit.
    fn weighted_pick(&mut self) -> usize {
        let w = [self.cfg.interactive_weight as i64, self.cfg.batch_weight as i64];
        self.credit[0] += w[0];
        self.credit[1] += w[1];
        let lane = usize::from(self.credit[1] > self.credit[0]);
        self.credit[lane] -= w[0] + w[1];
        lane
    }

    /// Stop admitting: every further [`Scheduler::submit`] is shed with
    /// [`RejectReason::ShuttingDown`]. Queued and running jobs drain
    /// normally.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// True when both queues are empty and every shard is idle.
    pub fn idle(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty) && self.shards.iter().all(Option::is_none)
    }

    /// Current queue depth of `priority`'s lane.
    pub fn queue_depth(&self, priority: Priority) -> usize {
        self.queues[priority.lane()].len()
    }

    /// Number of busy shards.
    pub fn busy_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.is_some()).count()
    }

    /// The per-job event budget a spec resolves to: its own, or the
    /// configured default when it asks for `0`.
    pub fn resolve_event_budget(&self, spec: &JobSpec) -> u64 {
        if spec.event_budget == 0 {
            self.cfg.job_event_budget
        } else {
            spec.event_budget
        }
    }

    /// The wall-clock budget (ns) the tenant has *left* when this spec is
    /// placed, or `None` when wall budgets are unconfigured. Admission
    /// vetoes a tenant already over budget; this closes the other half of
    /// the contract — a job admitted with a sliver of budget remaining
    /// carries that sliver into the run, where the phase-boundary check
    /// reaps it mid-flight instead of letting it run arbitrarily long on
    /// a budget that expired after admission.
    pub fn resolve_wall_budget(&self, spec: &JobSpec) -> Option<u64> {
        if self.cfg.tenant_wall_budget_ns == u64::MAX {
            return None;
        }
        let u = self.ledger.usage(spec.tenant);
        Some(self.cfg.tenant_wall_budget_ns.saturating_sub(u.wall_ns))
    }

    /// The configuration the scheduler was built with.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// The account book.
    pub fn ledger(&self) -> &TenantLedger {
        &self.ledger
    }

    /// The append-only decision log.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Take the decision log, leaving an empty one (for callers that
    /// stream it incrementally).
    pub fn take_log(&mut self) -> Vec<LogEntry> {
        std::mem::take(&mut self.log)
    }
}
