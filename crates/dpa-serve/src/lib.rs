//! `dpa-serve` — the multi-tenant run service around the DPA runtime.
//!
//! ROADMAP item 3: scale as *jobs per second*, not nodes per job. The
//! service accepts run requests (a DST workload + seed + fault plan on a
//! tenant's account), schedules them across a pool of sim shards, and
//! answers every submission synchronously — accepted with a [`JobId`] or
//! shed with a structured [`RejectReason`], never a hang.
//!
//! The crate splits policy from machinery:
//!
//! - [`sched`] — the pure scheduler: admission control, bounded per-lane
//!   queues, weighted interactive/batch pick with starvation aging, and
//!   graceful degradation (batch concurrency shrinks before interactive
//!   sheds). Deterministic and replay-identical by construction.
//! - [`ledger`] — per-tenant accounting: admission counters plus usage
//!   metered from the PR-2 per-path message stats, wall clock, and
//!   simulator events.
//! - [`model`] — the seeded load generator and closed-loop model the
//!   proptests and the `service-*.case` corpus drive, plus the invariant
//!   checkers (conservation, no-starvation, bounded depth).
//! - [`pool`] — the live service: one worker thread per shard around the
//!   pure scheduler, executing jobs through a caller-supplied
//!   [`JobRunner`] (the bench crate's runner wraps `bench::dst`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod model;
pub mod pool;
pub mod sched;
pub mod types;

pub use ledger::{TenantLedger, TenantUsage};
pub use model::{
    check_conservation, check_depth_bound, check_no_starvation, gen_arrivals, replay_scenario,
    run_model, scenario, Arrival, LoadProfile, ModelRun, SCENARIOS,
};
pub use pool::{JobRecord, JobRunner, Service, ServiceReport};
pub use sched::{LogEntry, SchedConfig, Scheduler};
pub use types::{Admission, JobId, JobReport, JobSpec, Priority, RejectReason, TenantId};

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tenant: u16, priority: Priority) -> JobSpec {
        JobSpec {
            tenant: TenantId(tenant),
            priority,
            workload: "synth".into(),
            seed: 7,
            plan: "none".into(),
            event_budget: 0,
        }
    }

    #[test]
    fn accepts_and_places_until_saturation_then_queues() {
        let mut s = Scheduler::new(SchedConfig {
            shards: 2,
            queue_cap: 2,
            ..SchedConfig::default()
        });
        for i in 0..4 {
            assert!(matches!(
                s.submit(i, &spec(0, Priority::Interactive)),
                Admission::Accepted(_)
            ));
        }
        assert_eq!(s.busy_shards(), 2);
        assert_eq!(s.queue_depth(Priority::Interactive), 2);
        // Queue full now.
        let adm = s.submit(9, &spec(0, Priority::Interactive));
        assert!(matches!(
            adm,
            Admission::Rejected {
                reason: RejectReason::QueueFull { depth: 2, cap: 2, .. }
            }
        ));
    }

    #[test]
    fn completion_refills_from_queue_and_bills_tenant() {
        let mut s = Scheduler::new(SchedConfig {
            shards: 1,
            ..SchedConfig::default()
        });
        s.submit(0, &spec(3, Priority::Batch));
        s.submit(1, &spec(3, Priority::Batch));
        assert_eq!(s.queue_depth(Priority::Batch), 1);
        let report = JobReport {
            completed: true,
            sim_events: 500,
            wall_ns: 42,
            ..JobReport::default()
        };
        let done = s.complete(10, 0, &report);
        assert_eq!(done, JobId(0));
        // The queued job took the freed shard.
        assert_eq!(s.busy_shards(), 1);
        assert_eq!(s.queue_depth(Priority::Batch), 0);
        let u = s.ledger().usage(TenantId(3));
        assert_eq!((u.accepted, u.completed, u.outstanding), (2, 1, 1));
        assert_eq!((u.sim_events, u.wall_ns), (500, 42));
    }

    #[test]
    fn tenant_outstanding_cap_sheds() {
        let mut s = Scheduler::new(SchedConfig {
            shards: 1,
            tenant_outstanding_cap: 2,
            ..SchedConfig::default()
        });
        s.submit(0, &spec(1, Priority::Interactive));
        s.submit(1, &spec(1, Priority::Interactive));
        assert!(matches!(
            s.submit(2, &spec(1, Priority::Interactive)),
            Admission::Rejected {
                reason: RejectReason::TenantOutstanding { outstanding: 2, cap: 2 }
            }
        ));
        // A different tenant is unaffected.
        assert!(matches!(
            s.submit(3, &spec(2, Priority::Interactive)),
            Admission::Accepted(_)
        ));
    }

    #[test]
    fn tenant_event_budget_sheds_after_spend() {
        let mut s = Scheduler::new(SchedConfig {
            shards: 1,
            tenant_event_budget: 1_000,
            ..SchedConfig::default()
        });
        s.submit(0, &spec(0, Priority::Batch));
        let report = JobReport {
            completed: true,
            sim_events: 1_500,
            ..JobReport::default()
        };
        s.complete(5, 0, &report);
        assert!(matches!(
            s.submit(6, &spec(0, Priority::Batch)),
            Admission::Rejected {
                reason: RejectReason::TenantEventBudget { spent: 1_500, budget: 1_000 }
            }
        ));
    }

    #[test]
    fn over_age_batch_head_beats_interactive() {
        let mut s = Scheduler::new(SchedConfig {
            shards: 1,
            aging_ns: 100,
            ..SchedConfig::default()
        });
        // Occupy the only shard, then queue one batch and one interactive.
        s.submit(0, &spec(0, Priority::Interactive));
        s.submit(1, &spec(0, Priority::Batch));
        s.submit(2, &spec(0, Priority::Interactive));
        // Complete far past the aging bound: the batch head must win.
        s.complete(500, 0, &JobReport { completed: true, ..JobReport::default() });
        let placed: Vec<_> = s
            .log()
            .iter()
            .filter_map(|e| match e {
                LogEntry::Place { job, priority, .. } => Some((*job, *priority)),
                _ => None,
            })
            .collect();
        assert_eq!(placed[1], (JobId(1), Priority::Batch));
    }

    #[test]
    fn degradation_shrinks_batch_cap_to_floor_one() {
        let cfg = SchedConfig {
            shards: 4,
            batch_shard_cap: 3,
            degrade_depth: 2,
            queue_cap: 64,
            ..SchedConfig::default()
        };
        let mut s = Scheduler::new(cfg);
        // Saturate all shards so everything else queues.
        for i in 0..4 {
            s.submit(i, &spec(0, Priority::Batch));
        }
        assert_eq!(s.effective_batch_cap(), 3);
        // Push interactive depth past degrade_depth.
        for i in 0..6 {
            s.submit(10 + i, &spec(1, Priority::Interactive));
        }
        // depth 6, excess 4 over degrade_depth 2 => 3 - 4 floored at 1.
        assert_eq!(s.effective_batch_cap(), 1);
    }

    #[test]
    fn drain_rejects_with_shutting_down() {
        let mut s = Scheduler::new(SchedConfig::default());
        s.drain();
        assert!(matches!(
            s.submit(0, &spec(0, Priority::Interactive)),
            Admission::Rejected { reason: RejectReason::ShuttingDown }
        ));
    }

    #[test]
    fn model_scenarios_replay_clean() {
        for name in SCENARIOS {
            let violations = replay_scenario(name, 0xD5A).expect("known scenario");
            assert!(violations.is_empty(), "{name}: {violations:?}");
        }
    }

    #[test]
    fn live_pool_runs_jobs_and_drains() {
        struct Sleepy;
        impl JobRunner for Sleepy {
            fn run(&self, spec: &JobSpec, _budget: u64, _wall: Option<u64>) -> JobReport {
                std::thread::sleep(std::time::Duration::from_micros(200));
                JobReport {
                    completed: true,
                    sim_events: spec.seed % 100,
                    ..JobReport::default()
                }
            }
        }
        let svc = Service::start(
            SchedConfig {
                shards: 2,
                ..SchedConfig::default()
            },
            Sleepy,
        );
        let mut accepted = 0;
        for i in 0..20u64 {
            let pri = if i % 3 == 0 { Priority::Batch } else { Priority::Interactive };
            if matches!(svc.submit(spec((i % 4) as u16, pri)), Admission::Accepted(_)) {
                accepted += 1;
            }
        }
        let report = svc.shutdown();
        assert_eq!(report.jobs.len(), accepted);
        assert!(report.jobs.iter().all(|j| j.report.completed));
        assert!(check_conservation(&report.log).is_empty());
        let total: u64 = report.ledger.iter().map(|(_, u)| u.completed).sum();
        assert_eq!(total, accepted as u64);
    }
}
