//! Request/response types for the run service.

/// A paying (or at least metered) customer of the run service. Tenants are
/// small dense integers so the ledger can stay an ordered map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u16);

/// Priority lane a job is submitted to.
///
/// `Interactive` jobs are latency-sensitive (a user is waiting on the
/// result); `Batch` jobs are throughput work (sweeps, corpus replays).
/// The scheduler gives interactive the larger pick weight but ages the
/// batch head so sustained interactive load cannot starve batch forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive lane; preferred by the weighted pick.
    Interactive,
    /// Throughput lane; protected from starvation by head aging.
    Batch,
}

impl Priority {
    /// Dense lane index (`Interactive` = 0, `Batch` = 1).
    pub fn lane(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }

    /// All lanes, in lane-index order.
    pub const ALL: [Priority; 2] = [Priority::Interactive, Priority::Batch];

    /// Lane name for reports and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// One run request: which DST workload to run, under which seed and fault
/// plan, on whose account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Account the job is billed to.
    pub tenant: TenantId,
    /// Priority lane.
    pub priority: Priority,
    /// DST workload name (see `bench::dst::WORKLOADS`); the scheduler
    /// treats it as an opaque label.
    pub workload: String,
    /// Sweep seed: drives both the schedule perturbation and the fault
    /// plan of the run.
    pub seed: u64,
    /// Fault-plan name (see `bench::dst::ALL_PLANS`), opaque to the
    /// scheduler.
    pub plan: String,
    /// Per-job event budget; `0` means "use the service default"
    /// ([`crate::SchedConfig::job_event_budget`]). A run that exhausts the
    /// budget stops with a structured `budget_exhausted` stall and is
    /// reaped, never leaked.
    pub event_budget: u64,
}

/// Handle for an accepted job, unique within one scheduler's lifetime and
/// assigned in admission order (so logs sort naturally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Why a submission was turned away. Every reject is structured and
/// immediate — the service sheds load, it never hangs a caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The lane's bounded queue is at capacity.
    QueueFull {
        /// Lane that was full.
        lane: Priority,
        /// Depth observed at admission time.
        depth: usize,
        /// Configured capacity ([`crate::SchedConfig::queue_cap`]).
        cap: usize,
    },
    /// The tenant already has too many queued + running jobs.
    TenantOutstanding {
        /// Jobs currently queued or running for the tenant.
        outstanding: u64,
        /// Configured cap ([`crate::SchedConfig::tenant_outstanding_cap`]).
        cap: u64,
    },
    /// The tenant's simulated-event budget is spent.
    TenantEventBudget {
        /// Events already billed to the tenant.
        spent: u64,
        /// Configured budget ([`crate::SchedConfig::tenant_event_budget`]).
        budget: u64,
    },
    /// The tenant's wall-clock budget is spent.
    TenantWallBudget {
        /// Wall nanoseconds already billed to the tenant.
        spent_ns: u64,
        /// Configured budget ([`crate::SchedConfig::tenant_wall_budget_ns`]).
        budget_ns: u64,
    },
    /// The service is draining toward shutdown.
    ShuttingDown,
}

/// Synchronous answer to a submission: either a handle or a structured
/// reason, never a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The job is queued (or already placed); track it by this id.
    Accepted(JobId),
    /// The job was shed.
    Rejected {
        /// Why it was shed.
        reason: RejectReason,
    },
}

impl Admission {
    /// The job id, if accepted.
    pub fn job(&self) -> Option<JobId> {
        match self {
            Admission::Accepted(id) => Some(*id),
            Admission::Rejected { .. } => None,
        }
    }
}

/// What a shard reports back when a job finishes (by any means). The
/// per-path message counts come from the PR-2 runtime stats and feed the
/// tenant ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobReport {
    /// Every node reached quiescence.
    pub completed: bool,
    /// The run hit its event budget and was stopped (reaped, not leaked).
    pub budget_exhausted: bool,
    /// Simulator events processed.
    pub sim_events: u64,
    /// Simulated makespan in nanoseconds.
    pub sim_makespan_ns: u64,
    /// Alignment-request messages sent (billed path).
    pub request_msgs: u64,
    /// Reply messages sent (billed path).
    pub reply_msgs: u64,
    /// Fire-and-forget update messages sent (billed path).
    pub update_msgs: u64,
    /// Invariant-oracle violations observed on the run (0 for a healthy
    /// service; any non-zero count is surfaced, never swallowed).
    pub violations: u64,
    /// Wall-clock nanoseconds the shard spent on the job.
    pub wall_ns: u64,
    /// Stall diagnosis, empty when none.
    pub stall: String,
}
