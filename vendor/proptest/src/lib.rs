//! Offline, dependency-free stub of the subset of the `proptest` API this
//! workspace uses: the `proptest!` macro over `name in strategy` argument
//! lists, `ProptestConfig::with_cases`, `any::<T>()`, numeric-range
//! strategies, and the `prop_assert*` macros.
//!
//! The build container has no route to crates.io, so the real `proptest`
//! cannot be fetched. This stub keeps the property tests running with the
//! semantics that matter here: each test body is executed for `cases`
//! randomized inputs drawn from the given strategies, failures report the
//! case seed and the concrete inputs. Unlike upstream there is no
//! shrinking — the printed seed and inputs make failures reproducible
//! directly, which is all the DST workflow needs.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore, SampleUniform, SeedableRng};

/// Per-test configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of values for one test argument.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Full-domain generation for [`any`].
pub trait Arbitrary {
    /// Draw a value from the type's full domain.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy drawing from a type's full domain (subset of `proptest::arbitrary`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Deterministic per-case RNG: a pure function of test name and case index,
/// so a failure report's case number is enough to replay it.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h = (h ^ case as u64).wrapping_mul(0x1000_0000_01b3);
    SmallRng::seed_from_u64(h)
}

/// Run one case body, decorating any panic with the concrete inputs.
pub fn check_case<F: FnOnce()>(test_name: &str, case: u32, inputs: &str, body: F) {
    if let Err(e) = catch_unwind(AssertUnwindSafe(body)) {
        eprintln!("proptest '{test_name}' failed at case {case} with inputs: {inputs}");
        resume_unwind(e);
    }
}

/// Property-test entry point (subset of `proptest::proptest!`).
///
/// Supports the form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    $crate::check_case(stringify!($name), __case, &__inputs, move || $body);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assertion inside a property body (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property body (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property body (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Everything a property-test file needs (subset of `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_hold(x in 3u32..17, f in 0.0f64..0.5, s in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..0.5).contains(&f));
            prop_assert_eq!(s, s);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 1usize..4) {
            prop_assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = super::case_rng("t", 3);
        let mut b = super::case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::case_rng("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
