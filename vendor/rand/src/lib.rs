//! Offline, dependency-free stub of the subset of the `rand` 0.8 API this
//! workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over numeric ranges, and `seq::SliceRandom::shuffle`.
//!
//! The container this repository builds in has no network access to
//! crates.io, so the real `rand` cannot be fetched. This stub keeps the
//! same call sites compiling and deterministic (same seed → same stream),
//! backed by SplitMix64-seeded xoshiro256**. The value streams differ from
//! upstream `rand`, which only shifts *which* random worlds tests and
//! benches see — never correctness, since no test asserts specific drawn
//! values.

#![forbid(unsafe_code)]

use std::ops::Range;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core randomness source: a raw 64-bit stream.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Lemire multiply-shift; bias negligible for test workloads,
                // rejection loop keeps it exact anyway.
                let mut x = rng.next_u64() as u128;
                let mut m = x * span;
                let mut lo = m as u64;
                if (lo as u128) < span {
                    let threshold = (span.wrapping_neg() % span) as u64;
                    while lo < threshold {
                        x = rng.next_u64() as u128;
                        m = x * span;
                        lo = m as u64;
                    }
                }
                (low as i128 + (m >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Uniform draw over a type's full domain (`bool` and `f64 ∈ [0,1)`
    /// supported, matching upstream semantics for those types).
    fn gen<T: Generate>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can produce.
pub trait Generate {
    /// Draw one value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Generate for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Generate for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Generate for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Slice shuffling and choosing (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-3i64..9);
            assert!((-3..9).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully sorted");
    }

    #[test]
    fn choose_in_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
