//! Offline, dependency-free stub of the subset of the `criterion` API this
//! workspace's benches use: `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BatchSize`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build container has no route to crates.io, so the real `criterion`
//! cannot be fetched. This stub keeps `cargo bench` compiling and running:
//! each benchmark is warmed up once, timed for `sample_size` samples, and
//! the mean wall time (plus derived throughput) is printed. There is no
//! statistical analysis or HTML report — the benches remain useful as
//! smoke tests and rough regression trackers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration work, used to derive a rate from the mean time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, not used).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh setup for every routine call.
    PerIteration,
    /// Small input, may be reused across a batch.
    SmallInput,
    /// Large input, few per batch.
    LargeInput,
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f` for the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is untimed.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{group}/{id}: no samples");
        return;
    }
    let mean_ns = b.total.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(" ({:.1} MiB/s)", n as f64 / mean_ns * 1e9 / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{group}/{id}: {mean_ns:.0} ns/iter over {} samples{rate}", b.iters);
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&self.name, &id, &b, self.throughput);
        self
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry object (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into one runnable group fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(64));
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::PerIteration,
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_benchmarks() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
